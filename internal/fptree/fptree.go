// Package fptree implements the pattern-growth substrate of the FP-growth
// miner (Han, Pei & Yin, SIGMOD 2000 — the candidate-free successor of the
// level-wise miners this repo reproduces from the SIGMOD'96 tutorial): a
// pooled-node FP-tree with header tables over support-descending item
// ranks.
//
// The package obeys the repo-wide build/merge/project contract:
//
//   - Build: a tree is constructed per contiguous database shard by
//     inserting each transaction's frequent items in rank order, so common
//     prefixes share nodes and the tree is a compressed representation of
//     the shard (nodes live in one pooled slice, links are int32 indices —
//     no per-node allocations, no pointer chasing across the heap).
//   - Merge: per-shard trees combine by serial path-wise integer addition
//     into a global tree. Addition is commutative, so the merged counts
//     (node counts and header totals alike) are bit-identical to a
//     single-threaded build over the whole database regardless of shard
//     count or merge order.
//   - Project: mining grows patterns by projecting a rank's conditional
//     pattern base (the prefix paths of its header chain) into a pruned
//     conditional tree, using a Scratch that recycles count arrays, path
//     buffers and whole trees across the recursion. Projection never
//     rescans the database; every conditional count is an exact support.
//
// internal/assoc's FPGrowth drives the recursion (single-path shortcut,
// per-item fan-out across workers) and assembles the Result.
package fptree

import (
	"fmt"
	"sort"

	"repro/internal/transactions"
)

// Ranks fixes the item order every FP-tree over one database shares:
// frequent items get dense ranks 0,1,2,… in support-descending order
// (ties broken by ascending item id, so the order is deterministic).
// Transactions are inserted most-frequent-first, which maximises prefix
// sharing — the compression argument of the FP-tree paper.
type Ranks struct {
	// OfItem maps an item id to its rank; -1 marks infrequent items.
	OfItem []int32
	// Items maps a rank back to its item id.
	Items []int32
	// Counts holds each rank's global support, descending.
	Counts []int
}

// NewRanks builds the rank table from per-item support counts (indexed by
// item id, as produced by a pass-1 scan) and the absolute support floor.
func NewRanks(counts []int, minCount int) *Ranks {
	r := &Ranks{OfItem: make([]int32, len(counts))}
	for i := range r.OfItem {
		r.OfItem[i] = -1
	}
	order := make([]int32, 0, len(counts))
	for item, c := range counts {
		if c >= minCount {
			order = append(order, int32(item))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		return a < b
	})
	r.Items = order
	r.Counts = make([]int, len(order))
	for rk, item := range order {
		r.OfItem[item] = int32(rk)
		r.Counts[rk] = counts[item]
	}
	return r
}

// Len returns the number of ranked (frequent) items.
func (r *Ranks) Len() int { return len(r.Items) }

// node is one FP-tree node. Links are indices into the owning tree's node
// pool; 0 is the null link (node 0 is the root, which is never a child,
// sibling or header-chain member).
type node struct {
	rank    int32 // item rank; unused on the root
	parent  int32 // parent node, 0 for depth-1 nodes
	child   int32 // first child, 0 if leaf
	sibling int32 // next sibling in the parent's child list
	next    int32 // next node of the same rank (header chain)
	count   int   // transactions whose rank path runs through this node
}

// Tree is a pooled-node FP-tree: nodes live in one slice, the header table
// chains all nodes of a rank, and totals accumulates each rank's support
// within the tree. All trees over the same database share one *Ranks.
type Tree struct {
	ranks  *Ranks
	nodes  []node  // nodes[0] is the root
	heads  []int32 // rank -> first node of the header chain, 0 if absent
	totals []int   // rank -> summed node counts (the rank's support here)
	// present lists the ranks with nonzero totals (first-touch order until
	// Present sorts it), so mining a conditional tree iterates only the few
	// ranks of its pattern base instead of the whole rank universe.
	present []int32
	// rootIdx maps rank -> depth-1 child of the root (0 if absent). The
	// root is the one node whose child list grows towards |L1| siblings —
	// every transaction starts an insert there — so it gets a direct
	// index while deeper nodes keep the short sibling scan.
	rootIdx []int32
}

// New returns an empty tree over the given rank table.
func New(r *Ranks) *Tree {
	return &Tree{
		ranks:   r,
		nodes:   make([]node, 1, 64),
		heads:   make([]int32, r.Len()),
		totals:  make([]int, r.Len()),
		rootIdx: make([]int32, r.Len()),
	}
}

// Build constructs one tree from a run of transactions — the per-shard
// construction step; shard trees combine with Merge.
func Build(txs []transactions.Itemset, r *Ranks) *Tree {
	t := New(r)
	var buf []int32
	for _, tx := range txs {
		buf = t.AddTransaction(tx, buf)
	}
	return t
}

// Ranks returns the shared rank table.
func (t *Tree) Ranks() *Ranks { return t.ranks }

// Total returns the summed count of rank's nodes — the exact support of
// the rank's item within the (conditional) database this tree represents.
func (t *Tree) Total(rank int32) int { return t.totals[rank] }

// Empty reports whether the tree holds no transactions.
func (t *Tree) Empty() bool { return len(t.nodes) == 1 }

// NumNodes returns the number of item nodes (the root is not counted).
func (t *Tree) NumNodes() int { return len(t.nodes) - 1 }

// AddTransaction filters tx to its ranked items, orders them by ascending
// rank (most frequent first) and inserts the path with count 1. buf is a
// reusable rank buffer; the possibly-grown buffer is returned so callers
// can thread it through a build loop without reallocating.
//
//invcheck:hotpath
func (t *Tree) AddTransaction(tx transactions.Itemset, buf []int32) []int32 {
	buf = buf[:0]
	for _, item := range tx {
		if item < len(t.ranks.OfItem) {
			if rk := t.ranks.OfItem[item]; rk >= 0 {
				//lint:ignore invcheck/allocbound buf is the caller-threaded scratch buffer: it grows to the longest transaction once and is reused for the rest of the build
				buf = append(buf, rk)
			}
		}
	}
	// Insertion sort: transactions are short and an itemset never repeats
	// an item, so this beats sort.Slice on the build hot path.
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && buf[j] < buf[j-1]; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	if len(buf) > 0 {
		t.Insert(buf, 1)
	}
	return buf
}

// Insert adds one rank path (ascending ranks, i.e. most frequent first)
// with the given count, sharing existing prefix nodes.
//
//invcheck:hotpath
func (t *Tree) Insert(path []int32, count int) {
	cur := int32(0)
	for _, rk := range path {
		if t.totals[rk] == 0 {
			//lint:ignore invcheck/allocbound present grows at most once per distinct rank — bounded by |L1|, not by the transaction count
			t.present = append(t.present, rk)
		}
		t.totals[rk] += count
		cur = t.step(cur, rk, count)
	}
}

// Present returns the ranks that occur in the tree, sorted ascending. For
// a conditional tree this is exactly the surviving pattern base — usually
// a tiny fraction of the rank universe — which keeps the mining recursion
// at O(ranks present) per tree instead of O(|L1|).
func (t *Tree) Present() []int32 {
	sort.Slice(t.present, func(i, j int) bool { return t.present[i] < t.present[j] })
	return t.present
}

// step descends from cur to its rk child, creating the child if missing,
// and adds count to it.
//
//invcheck:hotpath
func (t *Tree) step(cur, rk int32, count int) int32 {
	var child int32
	if cur == 0 {
		child = t.rootIdx[rk]
	} else {
		child = t.nodes[cur].child
		for child != 0 && t.nodes[child].rank != rk {
			child = t.nodes[child].sibling
		}
	}
	if child == 0 {
		child = int32(len(t.nodes))
		//lint:ignore invcheck/allocbound node-arena growth: a node is created once per distinct path prefix and the backing array doubles amortized, far below one alloc per transaction
		t.nodes = append(t.nodes, node{
			rank:    rk,
			parent:  cur,
			sibling: t.nodes[cur].child,
			next:    t.heads[rk],
		})
		t.nodes[cur].child = child
		t.heads[rk] = child
		if cur == 0 {
			t.rootIdx[rk] = child
		}
	}
	t.nodes[child].count += count
	return child
}

// Merge folds o into t by path-wise integer addition: every path of o is
// inserted into t with its count. Merging shard trees in any order yields
// node counts and header totals bit-identical to building one tree over
// the concatenated shards, because addition is commutative and paths are
// independent of shard boundaries. Merge is serial by design — the
// parallelism lives in the per-shard builds.
func (t *Tree) Merge(o *Tree) {
	t.mergeChildren(0, 0, o)
}

// mergeChildren mirrors o's subtree under src onto t's subtree under dst.
func (t *Tree) mergeChildren(dst, src int32, o *Tree) {
	for c := o.nodes[src].child; c != 0; c = o.nodes[c].sibling {
		rk := o.nodes[c].rank
		cnt := o.nodes[c].count
		if t.totals[rk] == 0 {
			t.present = append(t.present, rk)
		}
		t.totals[rk] += cnt
		d := t.step(dst, rk, cnt)
		t.mergeChildren(d, c, o)
	}
}

// EncodedNode is the wire form of one FP-tree node for the distributed
// backend (internal/dist): the node's item rank, the pool index of its
// parent, and its transaction count. Child, sibling and header-chain links
// are structural and are rebuilt by Import, so a serialized tree is just
// the flat node pool.
type EncodedNode struct {
	Rank   int32
	Parent int32
	Count  int
}

// Export serializes the tree's item nodes in pool order (the root is
// implicit). Nodes are appended to the pool as paths are inserted, so a
// parent always precedes its children; Import relies on that to rebuild
// links in one forward pass.
func (t *Tree) Export() []EncodedNode {
	out := make([]EncodedNode, 0, len(t.nodes)-1)
	for _, n := range t.nodes[1:] {
		out = append(out, EncodedNode{Rank: n.rank, Parent: n.parent, Count: n.count})
	}
	return out
}

// Import rebuilds a tree from Export's node list under the shared rank
// table. Node counts, header totals and the present-rank set are identical
// to the exported tree's; sibling and header-chain order may differ, which
// mining never observes — pattern counts are sums over whole chains and
// merges are commutative. Malformed wire data (out-of-range rank or a
// parent that does not precede its child) returns an error instead of
// corrupting the pool.
func Import(r *Ranks, nodes []EncodedNode) (*Tree, error) {
	t := New(r)
	if cap(t.nodes) < len(nodes)+1 {
		grown := make([]node, 1, len(nodes)+1)
		grown[0] = t.nodes[0]
		t.nodes = grown
	}
	for i, en := range nodes {
		idx := int32(len(t.nodes))
		if en.Rank < 0 || int(en.Rank) >= r.Len() {
			return nil, fmt.Errorf("fptree: import node %d: rank %d outside universe %d", i, en.Rank, r.Len())
		}
		if en.Parent < 0 || en.Parent >= idx {
			return nil, fmt.Errorf("fptree: import node %d: parent %d does not precede it", i, en.Parent)
		}
		// Every exported node carries at least one transaction; zero or
		// negative wire counts would corrupt the first-touch present set
		// and the totals.
		if en.Count <= 0 {
			return nil, fmt.Errorf("fptree: import node %d: non-positive count %d", i, en.Count)
		}
		t.nodes = append(t.nodes, node{
			rank:    en.Rank,
			parent:  en.Parent,
			sibling: t.nodes[en.Parent].child,
			next:    t.heads[en.Rank],
			count:   en.Count,
		})
		t.nodes[en.Parent].child = idx
		t.heads[en.Rank] = idx
		if en.Parent == 0 {
			t.rootIdx[en.Rank] = idx
		}
		if t.totals[en.Rank] == 0 {
			t.present = append(t.present, en.Rank)
		}
		t.totals[en.Rank] += en.Count
	}
	return t, nil
}

// Scratch pools the buffers conditional projection and single-path
// detection reuse across the mining recursion: the per-rank conditional
// count array (zeroed back after every projection), the ancestor walk
// buffer, the single-path buffers, and released conditional trees. One
// Scratch serves one goroutine; it must not be shared concurrently.
type Scratch struct {
	counts   []int   // per-rank conditional counts, transiently non-zero
	touched  []int32 // ranks written into counts by the current projection
	path     []int32 // ancestor path buffer
	spRanks  []int32 // SinglePath rank buffer
	spCounts []int   // SinglePath count buffer
	free     []*Tree // released conditional trees, ready for reuse
}

// NewScratch returns a scratch sized for the rank universe.
func NewScratch(r *Ranks) *Scratch {
	return &Scratch{counts: make([]int, r.Len())}
}

// Release returns a conditional tree obtained from Project to the pool so
// the next projection reuses its node slice and header arrays.
func (s *Scratch) Release(t *Tree) { s.free = append(s.free, t) }

// getTree hands out a recycled tree (reset) or a fresh one.
func (s *Scratch) getTree(r *Ranks) *Tree {
	if n := len(s.free); n > 0 {
		t := s.free[n-1]
		s.free = s.free[:n-1]
		t.reset(r)
		return t
	}
	return New(r)
}

// reset clears the tree for reuse under the given rank table.
func (t *Tree) reset(r *Ranks) {
	t.ranks = r
	t.nodes = t.nodes[:1]
	t.nodes[0] = node{}
	t.present = t.present[:0]
	if len(t.heads) != r.Len() {
		t.heads = make([]int32, r.Len())
		t.totals = make([]int, r.Len())
		t.rootIdx = make([]int32, r.Len())
		return
	}
	for i := range t.heads {
		t.heads[i] = 0
	}
	for i := range t.totals {
		t.totals[i] = 0
	}
	for i := range t.rootIdx {
		t.rootIdx[i] = 0
	}
}

// Project builds the conditional FP-tree of rank: the prefix paths of
// rank's header chain form its conditional pattern base; items whose
// conditional support falls below minCount are pruned before insertion
// (conditional-tree pruning), so the returned tree holds exactly the
// frequent extension context of rank. The tree comes from the scratch
// pool — hand it back with s.Release once its recursion finishes.
func (t *Tree) Project(rank int32, minCount int, s *Scratch) *Tree {
	// Pass 1 over the header chain: exact conditional counts per ancestor
	// rank, touching only the ranks that actually occur.
	s.touched = s.touched[:0]
	for n := t.heads[rank]; n != 0; n = t.nodes[n].next {
		cnt := t.nodes[n].count
		for p := t.nodes[n].parent; p != 0; p = t.nodes[p].parent {
			rk := t.nodes[p].rank
			if s.counts[rk] == 0 {
				s.touched = append(s.touched, rk)
			}
			s.counts[rk] += cnt
		}
	}
	cond := s.getTree(t.ranks)
	// Pass 2: insert each prefix path, filtered to surviving ranks. The
	// upward walk yields descending ranks; reverse before inserting.
	for n := t.heads[rank]; n != 0; n = t.nodes[n].next {
		cnt := t.nodes[n].count
		s.path = s.path[:0]
		for p := t.nodes[n].parent; p != 0; p = t.nodes[p].parent {
			if rk := t.nodes[p].rank; s.counts[rk] >= minCount {
				s.path = append(s.path, rk)
			}
		}
		if len(s.path) == 0 {
			continue
		}
		for i, j := 0, len(s.path)-1; i < j; i, j = i+1, j-1 {
			s.path[i], s.path[j] = s.path[j], s.path[i]
		}
		cond.Insert(s.path, cnt)
	}
	// Zero only the touched counters so the array is clean for the next
	// projection at O(distinct ranks seen), not O(|L1|).
	for _, rk := range s.touched {
		s.counts[rk] = 0
	}
	return cond
}

// SinglePath reports whether the tree is one chain (every node has at most
// one child) and, if so, returns the chain's ranks and counts top-down.
// The returned slices are scratch-owned and valid until the next
// SinglePath call on the same scratch. Counts never increase along the
// chain, which is what makes the miner's subset shortcut exact: a subset's
// support is its deepest member's count.
func (t *Tree) SinglePath(s *Scratch) ([]int32, []int, bool) {
	s.spRanks = s.spRanks[:0]
	s.spCounts = s.spCounts[:0]
	for n := t.nodes[0].child; n != 0; n = t.nodes[n].child {
		if t.nodes[n].sibling != 0 {
			return nil, nil, false
		}
		s.spRanks = append(s.spRanks, t.nodes[n].rank)
		s.spCounts = append(s.spCounts, t.nodes[n].count)
	}
	return s.spRanks, s.spCounts, true
}
