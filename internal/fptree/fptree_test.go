package fptree

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/transactions"
)

// countItems is a test-local pass-1 scan.
func countItems(txs []transactions.Itemset, numItems int) []int {
	counts := make([]int, numItems)
	for _, tx := range txs {
		for _, item := range tx {
			counts[item]++
		}
	}
	return counts
}

// paperTxs is the worked example of the FP-growth paper (items renamed to
// small ints): five transactions whose tree has the shape the paper draws.
func paperTxs() []transactions.Itemset {
	return []transactions.Itemset{
		transactions.NewItemset(0, 1, 4, 6, 9),
		transactions.NewItemset(0, 1, 2, 5, 8),
		transactions.NewItemset(1, 3, 7),
		transactions.NewItemset(1, 2, 9),
		transactions.NewItemset(0, 1, 2, 5, 9),
	}
}

func TestNewRanksOrder(t *testing.T) {
	counts := []int{3, 0, 3, 1, 5, 2}
	r := NewRanks(counts, 2)
	// Frequent: item 4 (5), items 0 and 2 (3 each, tie broken by id), item 5 (2).
	wantItems := []int32{4, 0, 2, 5}
	if !reflect.DeepEqual(r.Items, wantItems) {
		t.Fatalf("Items = %v, want %v", r.Items, wantItems)
	}
	if !reflect.DeepEqual(r.Counts, []int{5, 3, 3, 2}) {
		t.Fatalf("Counts = %v", r.Counts)
	}
	for item, rk := range r.OfItem {
		frequent := counts[item] >= 2
		if frequent != (rk >= 0) {
			t.Fatalf("OfItem[%d] = %d, frequent=%v", item, rk, frequent)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestBuildTotalsMatchSupports(t *testing.T) {
	txs := paperTxs()
	counts := countItems(txs, 10)
	r := NewRanks(counts, 2)
	tree := Build(txs, r)
	for rk := 0; rk < r.Len(); rk++ {
		if got, want := tree.Total(int32(rk)), r.Counts[rk]; got != want {
			t.Errorf("Total(rank %d, item %d) = %d, want %d", rk, r.Items[rk], got, want)
		}
	}
	if tree.Empty() {
		t.Fatal("tree should not be empty")
	}
	// Prefix compression: the node count must be below the total item
	// occurrences (paths share prefixes) but at least the rank count.
	occurrences := 0
	for rk := 0; rk < r.Len(); rk++ {
		occurrences += r.Counts[rk]
	}
	if n := tree.NumNodes(); n >= occurrences || n < r.Len() {
		t.Fatalf("NumNodes = %d, want in [%d, %d)", n, r.Len(), occurrences)
	}
}

// TestMergeBitIdentical splits random databases into shards, builds one
// tree per shard, merges them in order and in reverse, and checks both
// merged trees agree with the single-build tree on every rank total and on
// every projection's totals — the bit-identical-counts contract.
func TestMergeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		nTx := 5 + rng.Intn(60)
		txs := make([]transactions.Itemset, nTx)
		for i := range txs {
			n := 1 + rng.Intn(7)
			items := make([]int, n)
			for j := range items {
				items[j] = rng.Intn(12)
			}
			txs[i] = transactions.NewItemset(items...)
		}
		minCount := 1 + rng.Intn(4)
		r := NewRanks(countItems(txs, 12), minCount)
		want := Build(txs, r)

		nShards := 1 + rng.Intn(5)
		var shards [][]transactions.Itemset
		per := nTx / nShards
		for s := 0; s < nShards; s++ {
			lo := s * per
			hi := lo + per
			if s == nShards-1 {
				hi = nTx
			}
			shards = append(shards, txs[lo:hi])
		}
		for _, order := range [][]int{forward(nShards), backward(nShards)} {
			merged := New(r)
			for _, s := range order {
				merged.Merge(Build(shards[s], r))
			}
			for rk := 0; rk < r.Len(); rk++ {
				if merged.Total(int32(rk)) != want.Total(int32(rk)) {
					t.Fatalf("trial %d: merged total of rank %d = %d, want %d",
						trial, rk, merged.Total(int32(rk)), want.Total(int32(rk)))
				}
			}
			// Projections over the merged tree must agree with projections
			// over the single-build tree rank by rank.
			sm, sw := NewScratch(r), NewScratch(r)
			for rk := 0; rk < r.Len(); rk++ {
				cm := merged.Project(int32(rk), minCount, sm)
				cw := want.Project(int32(rk), minCount, sw)
				for rr := 0; rr < r.Len(); rr++ {
					if cm.Total(int32(rr)) != cw.Total(int32(rr)) {
						t.Fatalf("trial %d: conditional total diverges at rank %d|%d: %d vs %d",
							trial, rr, rk, cm.Total(int32(rr)), cw.Total(int32(rr)))
					}
				}
				sm.Release(cm)
				sw.Release(cw)
			}
		}
	}
}

func forward(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func backward(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

// TestProjectCountsAreExactSupports cross-checks conditional totals against
// brute-force co-occurrence counts.
func TestProjectCountsAreExactSupports(t *testing.T) {
	txs := paperTxs()
	const minCount = 2
	r := NewRanks(countItems(txs, 10), minCount)
	tree := Build(txs, r)
	s := NewScratch(r)
	for rk := 0; rk < r.Len(); rk++ {
		cond := tree.Project(int32(rk), minCount, s)
		for rr := 0; rr < r.Len(); rr++ {
			got := cond.Total(int32(rr))
			// Brute force: transactions containing both items. Only ranks
			// above rk (more frequent items) appear in rk's prefix paths —
			// that is how pattern growth counts each itemset exactly once,
			// at its least-frequent member.
			pair := transactions.NewItemset(int(r.Items[rk]), int(r.Items[rr]))
			want := 0
			if rr < rk {
				for _, tx := range txs {
					if tx.ContainsAll(pair) {
						want++
					}
				}
				if want < minCount {
					want = 0 // pruned before insertion
				}
			}
			if got != want {
				t.Errorf("conditional support of item %d given %d = %d, want %d",
					r.Items[rr], r.Items[rk], got, want)
			}
		}
		s.Release(cond)
	}
}

func TestSinglePath(t *testing.T) {
	txs := []transactions.Itemset{
		transactions.NewItemset(1, 2, 3),
		transactions.NewItemset(1, 2),
		transactions.NewItemset(1),
	}
	r := NewRanks(countItems(txs, 4), 1)
	tree := Build(txs, r)
	s := NewScratch(r)
	ranks, counts, ok := tree.SinglePath(s)
	if !ok {
		t.Fatal("chain database should build a single-path tree")
	}
	if len(ranks) != 3 || !reflect.DeepEqual(counts, []int{3, 2, 1}) {
		t.Fatalf("path = %v counts = %v", ranks, counts)
	}

	branchy := append(txs, transactions.NewItemset(0, 3))
	rb := NewRanks(countItems(branchy, 4), 1)
	bt := Build(branchy, rb)
	if _, _, ok := bt.SinglePath(s); ok {
		t.Fatal("branching tree reported as single path")
	}

	if _, _, ok := New(r).SinglePath(s); !ok {
		t.Fatal("empty tree is trivially a single (empty) path")
	}
}

// TestScratchTreeReuse pins the pool round-trip: a released tree is reused
// and behaves like a fresh one.
func TestScratchTreeReuse(t *testing.T) {
	txs := paperTxs()
	r := NewRanks(countItems(txs, 10), 2)
	tree := Build(txs, r)
	s := NewScratch(r)
	first := tree.Project(0, 2, s)
	firstTotals := make([]int, r.Len())
	for rk := range firstTotals {
		firstTotals[rk] = first.Total(int32(rk))
	}
	s.Release(first)
	again := tree.Project(0, 2, s)
	if again != first {
		t.Fatal("pool did not recycle the released tree")
	}
	for rk := range firstTotals {
		if again.Total(int32(rk)) != firstTotals[rk] {
			t.Fatalf("recycled tree totals diverge at rank %d", rk)
		}
	}
}

func TestAddTransactionIgnoresInfrequentAndOutOfRange(t *testing.T) {
	txs := []transactions.Itemset{
		transactions.NewItemset(0, 1),
		transactions.NewItemset(0, 1),
		transactions.NewItemset(2), // infrequent at minCount 2
	}
	r := NewRanks(countItems(txs, 3), 2)
	tree := New(r)
	var buf []int32
	for _, tx := range txs {
		buf = tree.AddTransaction(tx, buf)
	}
	// An item beyond the rank table (seen only after ranks froze) is skipped.
	buf = tree.AddTransaction(transactions.NewItemset(0, 7), buf)
	if got := tree.Total(r.OfItem[0]); got != 3 {
		t.Fatalf("Total(item 0) = %d, want 3", got)
	}
	if tree.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2 (shared prefix)", tree.NumNodes())
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	txs := paperTxs()
	r := NewRanks(countItems(txs, 10), 2)
	tree := Build(txs, r)
	imported, err := Import(r, tree.Export())
	if err != nil {
		t.Fatal(err)
	}
	if imported.NumNodes() != tree.NumNodes() {
		t.Fatalf("nodes = %d, want %d", imported.NumNodes(), tree.NumNodes())
	}
	for rk := int32(0); int(rk) < r.Len(); rk++ {
		if imported.Total(rk) != tree.Total(rk) {
			t.Errorf("total(rank %d) = %d, want %d", rk, imported.Total(rk), tree.Total(rk))
		}
	}
	if !reflect.DeepEqual(imported.Present(), tree.Present()) {
		t.Errorf("present = %v, want %v", imported.Present(), tree.Present())
	}
	// Projection counts survive the round trip: same conditional supports
	// for every rank even though chain orders may differ.
	s1, s2 := NewScratch(r), NewScratch(r)
	for rk := int32(0); int(rk) < r.Len(); rk++ {
		a := tree.Project(rk, 2, s1)
		b := imported.Project(rk, 2, s2)
		for p := int32(0); int(p) < r.Len(); p++ {
			if a.Total(p) != b.Total(p) {
				t.Errorf("project(%d) total(%d) = %d, want %d", rk, p, b.Total(p), a.Total(p))
			}
		}
		s1.Release(a)
		s2.Release(b)
	}
}

func TestImportRandomizedEqualsMergedBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		var txs []transactions.Itemset
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			m := 1 + rng.Intn(6)
			items := make([]int, m)
			for j := range items {
				items[j] = rng.Intn(12)
			}
			txs = append(txs, transactions.NewItemset(items...))
		}
		r := NewRanks(countItems(txs, 12), 2)
		whole := Build(txs, r)
		// Split, build per part, export/import each, merge — the
		// distributed build path — and compare totals and node counts.
		cut := rng.Intn(len(txs))
		a, err := Import(r, Build(txs[:cut], r).Export())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Import(r, Build(txs[cut:], r).Export())
		if err != nil {
			t.Fatal(err)
		}
		a.Merge(b)
		if a.NumNodes() != whole.NumNodes() {
			t.Fatalf("trial %d: nodes = %d, want %d", trial, a.NumNodes(), whole.NumNodes())
		}
		for rk := int32(0); int(rk) < r.Len(); rk++ {
			if a.Total(rk) != whole.Total(rk) {
				t.Fatalf("trial %d: total(%d) = %d, want %d", trial, rk, a.Total(rk), whole.Total(rk))
			}
		}
	}
}

func TestImportRejectsMalformedNodes(t *testing.T) {
	r := NewRanks([]int{5, 5}, 2)
	if _, err := Import(r, []EncodedNode{{Rank: 9, Parent: 0, Count: 1}}); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := Import(r, []EncodedNode{{Rank: 0, Parent: 5, Count: 1}}); err == nil {
		t.Error("forward parent reference accepted")
	}
	if _, err := Import(r, []EncodedNode{{Rank: 0, Parent: -1, Count: 1}}); err == nil {
		t.Error("negative parent accepted")
	}
	if _, err := Import(r, []EncodedNode{{Rank: 0, Parent: 0, Count: 0}}); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Import(r, []EncodedNode{{Rank: 0, Parent: 0, Count: -3}}); err == nil {
		t.Error("negative count accepted")
	}
}
