// Package seqmine implements the two canonical sequential-pattern miners
// surveyed by the tutorial:
//
//   - AprioriAll (Agrawal & Srikant, ICDE'95 "Mining Sequential Patterns"):
//     a litemset phase, a transformation phase mapping each customer to
//     sequences of frequent-itemset ids, and a level-wise sequence phase;
//   - GSP (Srikant & Agrawal, EDBT'96 "Mining Sequential Patterns:
//     Generalizations and Performance Improvements"), which mines item-level
//     sequences directly and generates far fewer candidates.
//
// Both are level-wise: O(passes) scans over the customer sequences with
// candidate-containment tests per sequence, so candidate-set size is the
// cost driver the EXP-S1 comparison measures.
//
// A sequence is an ordered list of itemsets (one customer's transaction
// history). Sequence s is contained in t when every element of s is a
// subset of a distinct element of t in the same order. Support is counted
// per customer: a customer supports a pattern at most once.
package seqmine

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/synth"
	"repro/internal/transactions"
)

// FromSynth converts the synthetic generator's customer sequences into
// miner input (the two packages share the same underlying representation).
func FromSynth(raw []synth.Sequence) []Sequence {
	out := make([]Sequence, len(raw))
	for i, s := range raw {
		out[i] = Sequence(s)
	}
	return out
}

// Sequence is an ordered list of itemsets.
type Sequence []transactions.Itemset

// NumItems returns the total number of items across elements (the GSP
// notion of sequence length).
func (s Sequence) NumItems() int {
	n := 0
	for _, e := range s {
		n += len(e)
	}
	return n
}

// Contains reports whether sub is a subsequence of s: each element of sub
// is a subset of a distinct element of s, preserving order. The greedy
// left-to-right match is correct because elements are matched independently.
func (s Sequence) Contains(sub Sequence) bool {
	i := 0
	for _, want := range sub {
		for i < len(s) && !s[i].ContainsAll(want) {
			i++
		}
		if i >= len(s) {
			return false
		}
		i++
	}
	return true
}

// Equal reports element-wise equality.
func (s Sequence) Equal(o Sequence) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if !s[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical map key, e.g. "1,2|3".
func (s Sequence) Key() string {
	var sb strings.Builder
	for i, e := range s {
		if i > 0 {
			sb.WriteByte('|')
		}
		sb.WriteString(e.Key())
	}
	return sb.String()
}

// String renders the sequence as "<{1, 2} {3}>".
func (s Sequence) String() string {
	var sb strings.Builder
	sb.WriteByte('<')
	for i, e := range s {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(e.String())
	}
	sb.WriteByte('>')
	return sb.String()
}

// Clone returns a deep copy.
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	for i, e := range s {
		out[i] = e.Clone()
	}
	return out
}

// SeqCount pairs a frequent sequence with its customer support.
type SeqCount struct {
	Seq   Sequence
	Count int
}

// PassStat records one level-wise pass.
type PassStat struct {
	K          int
	Candidates int
	Frequent   int
}

// Result is the output of a sequence miner.
type Result struct {
	MinCount     int
	NumCustomers int
	// Levels[k-1] holds the frequent k-sequences. For AprioriAll, k counts
	// elements (litemsets); for GSP, k counts items.
	Levels []([]SeqCount)
	Passes []PassStat

	idx map[string]int
}

// Errors shared by the miners.
var (
	ErrBadSupport = errors.New("seqmine: minimum support must be in (0, 1]")
	ErrEmptyData  = errors.New("seqmine: no customer sequences")
)

// Miner is the common interface of the sequence miners.
type Miner interface {
	Name() string
	Mine(data []Sequence, minSupport float64) (*Result, error)
}

// All returns every frequent sequence across levels.
func (r *Result) All() []SeqCount {
	var out []SeqCount
	for _, level := range r.Levels {
		out = append(out, level...)
	}
	return out
}

// NumFrequent returns the number of frequent sequences.
func (r *Result) NumFrequent() int {
	n := 0
	for _, level := range r.Levels {
		n += len(level)
	}
	return n
}

// Support returns the support of seq if frequent.
func (r *Result) Support(seq Sequence) (int, bool) {
	if r.idx == nil {
		r.idx = make(map[string]int, r.NumFrequent())
		for _, sc := range r.All() {
			r.idx[sc.Seq.Key()] = sc.Count
		}
	}
	c, ok := r.idx[seq.Key()]
	return c, ok
}

// Maximal returns the frequent sequences not contained in any longer
// frequent sequence — the answer set of the ICDE'95 problem statement.
func (r *Result) Maximal() []SeqCount {
	all := r.All()
	var out []SeqCount
	for i, sc := range all {
		maximal := true
		for j, other := range all {
			if i == j {
				continue
			}
			if len(other.Seq) >= len(sc.Seq) && !other.Seq.Equal(sc.Seq) && other.Seq.Contains(sc.Seq) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, sc)
		}
	}
	return out
}

func checkInput(data []Sequence, minSupport float64) (int, error) {
	if minSupport <= 0 || minSupport > 1 {
		return 0, fmt.Errorf("%w: %v", ErrBadSupport, minSupport)
	}
	if len(data) == 0 {
		return 0, ErrEmptyData
	}
	n := int(minSupport*float64(len(data)) + 0.999999999)
	if n < 1 {
		n = 1
	}
	return n, nil
}
