package seqmine

import (
	"testing"

	"repro/internal/synth"
)

func TestContainsWithGapsBasics(t *testing.T) {
	s := Sequence{is(1), is(2), is(3), is(2), is(4)}
	tests := []struct {
		name           string
		sub            Sequence
		maxGap, minGap int
		want           bool
	}{
		{"unconstrained", Sequence{is(1), is(4)}, 0, 0, true},
		{"maxgap blocks distant", Sequence{is(1), is(4)}, 2, 0, false},
		{"maxgap allows near", Sequence{is(1), is(2)}, 1, 0, true},
		{"backtracking finds later match", Sequence{is(1), is(2), is(4)}, 3, 0, true},
		// Greedy would bind (2) to index 1, making (4) unreachable with
		// maxgap 1; backtracking binds (2) to index 3.
		{"backtracking required", Sequence{is(2), is(4)}, 1, 0, true},
		{"mingap forbids adjacent", Sequence{is(2), is(3)}, 0, 2, false},
		{"mingap satisfied", Sequence{is(1), is(3)}, 0, 2, true},
		{"single element", Sequence{is(3)}, 1, 1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := &GSP{MaxGap: tt.maxGap, MinGap: tt.minGap}
			if got := g.contains(s, tt.sub); got != tt.want {
				t.Errorf("contains(%v, maxGap=%d, minGap=%d) = %v, want %v",
					tt.sub, tt.maxGap, tt.minGap, got, tt.want)
			}
		})
	}
}

func TestGSPMaxGapReducesSupport(t *testing.T) {
	// Three customers; pattern <(1)(2)> appears adjacent for two of them
	// and at distance 3 for the third.
	data := []Sequence{
		{is(1), is(2), is(9)},
		{is(1), is(2), is(8)},
		{is(1), is(7), is(6), is(2)},
	}
	unconstrained := &GSP{}
	res, err := unconstrained.Mine(data, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sup, ok := res.Support(Sequence{is(1), is(2)}); !ok || sup != 3 {
		t.Fatalf("unconstrained support = %d, %v", sup, ok)
	}
	gapped := &GSP{MaxGap: 1}
	res, err = gapped.Mine(data, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sup, ok := res.Support(Sequence{is(1), is(2)}); !ok || sup != 2 {
		t.Fatalf("max-gap support = %d, %v (want 2)", sup, ok)
	}
}

func TestGSPMaxGapMatchesBruteForceOnSynthetic(t *testing.T) {
	raw, err := synth.Sequences(synth.SequenceConfig{
		NumCustomers: 80, AvgTxPerCust: 6, AvgTxSize: 2,
		AvgSeqPatLen: 3, AvgPatternSize: 1.25,
		NumSeqPatterns: 20, NumItemsets: 40, NumItems: 30,
		CorruptionMean: 0.4, CorruptionSD: 0.1, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := FromSynth(raw)
	g := &GSP{MaxGap: 2}
	res, err := g.Mine(data, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	// Every reported support must equal a direct recount, and no frequent
	// pattern may be missing from 2-sequences downward (spot-check by
	// recounting all reported plus all pairs of frequent items).
	for _, sc := range res.All() {
		count := 0
		for _, cust := range data {
			if g.containsWithGaps(cust, sc.Seq) {
				count++
			}
		}
		if count != sc.Count {
			t.Fatalf("support(%v) = %d, recount %d", sc.Seq, sc.Count, count)
		}
	}
	// Completeness at the 2-sequence level: every pair of frequent items
	// forming a frequent gapped 2-sequence must be reported.
	var items []int
	for _, sc := range res.Levels[0] {
		items = append(items, sc.Seq[0][0])
	}
	minCount := res.MinCount
	for _, x := range items {
		for _, y := range items {
			cand := Sequence{is(x), is(y)}
			count := 0
			for _, cust := range data {
				if g.containsWithGaps(cust, cand) {
					count++
				}
			}
			if count >= minCount {
				if _, ok := res.Support(cand); !ok {
					t.Fatalf("missing frequent gapped sequence %v (support %d)", cand, count)
				}
			}
		}
	}
}

func TestGSPHugeMaxGapEqualsUnconstrained(t *testing.T) {
	raw, err := synth.Sequences(synth.SequenceConfig{
		NumCustomers: 60, AvgTxPerCust: 5, AvgTxSize: 2,
		AvgSeqPatLen: 3, AvgPatternSize: 1.25,
		NumSeqPatterns: 15, NumItemsets: 30, NumItems: 25,
		CorruptionMean: 0.4, CorruptionSD: 0.1, Seed: 62,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := FromSynth(raw)
	plain, err := (&GSP{}).Mine(data, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	huge, err := (&GSP{MaxGap: 1000}).Mine(data, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	pm, hm := supportMap(plain), supportMap(huge)
	if len(pm) != len(hm) {
		t.Fatalf("pattern counts differ: %d vs %d", len(pm), len(hm))
	}
	for k, v := range pm {
		if hm[k] != v {
			t.Errorf("%s: %d vs %d", k, v, hm[k])
		}
	}
}
