package seqmine

import (
	"errors"
	"testing"

	"repro/internal/synth"
	"repro/internal/transactions"
)

func is(items ...int) transactions.Itemset { return transactions.NewItemset(items...) }

// paperData is the worked example of ICDE'95 (§2): five customers.
func paperData() []Sequence {
	return []Sequence{
		{is(30), is(90)},
		{is(10, 20), is(30), is(40, 60, 70)},
		{is(30, 50, 70)},
		{is(30), is(40, 70), is(90)},
		{is(90)},
	}
}

func TestSequenceContains(t *testing.T) {
	s := Sequence{is(10, 20), is(30), is(40, 60, 70)}
	tests := []struct {
		sub  Sequence
		want bool
	}{
		{Sequence{is(30)}, true},
		{Sequence{is(10), is(40)}, true},
		{Sequence{is(20), is(30), is(70)}, true},
		{Sequence{is(10, 20), is(40, 70)}, true},
		{Sequence{is(30), is(10)}, false}, // order violated
		{Sequence{is(10, 30)}, false},     // items span elements
		{Sequence{is(99)}, false},
		{Sequence{}, true},
	}
	for i, tt := range tests {
		if got := s.Contains(tt.sub); got != tt.want {
			t.Errorf("case %d: Contains(%v) = %v, want %v", i, tt.sub, got, tt.want)
		}
	}
}

func TestSequenceContainsDistinctElements(t *testing.T) {
	// Both pattern elements must map to distinct transactions.
	s := Sequence{is(1, 2)}
	if s.Contains(Sequence{is(1), is(2)}) {
		t.Error("two pattern elements matched one transaction")
	}
	s2 := Sequence{is(1), is(1)}
	if !s2.Contains(Sequence{is(1), is(1)}) {
		t.Error("repeated elements should match repeated transactions")
	}
}

func TestSequenceKeyStringEqual(t *testing.T) {
	s := Sequence{is(1, 2), is(3)}
	if s.Key() != "1,2|3" {
		t.Errorf("Key = %q", s.Key())
	}
	if s.String() != "<{1, 2} {3}>" {
		t.Errorf("String = %q", s.String())
	}
	if !s.Equal(Sequence{is(2, 1), is(3)}) {
		t.Error("Equal failed on same content")
	}
	if s.Equal(Sequence{is(1, 2)}) {
		t.Error("Equal true for different lengths")
	}
	if s.NumItems() != 3 {
		t.Errorf("NumItems = %d", s.NumItems())
	}
}

func TestPaperExample(t *testing.T) {
	// ICDE'95: with minsup 25% (2 of 5 customers) the maximal frequent
	// sequences include <(30)(90)> and <(30)(40 70)>.
	data := paperData()
	for _, m := range []Miner{&AprioriAll{}, &GSP{}} {
		t.Run(m.Name(), func(t *testing.T) {
			res, err := m.Mine(data, 0.4)
			if err != nil {
				t.Fatal(err)
			}
			mustSupport(t, res, Sequence{is(30), is(90)}, 2)
			mustSupport(t, res, Sequence{is(30), is(40, 70)}, 2)
			mustSupport(t, res, Sequence{is(30)}, 4)
			mustSupport(t, res, Sequence{is(90)}, 3)
			mustSupport(t, res, Sequence{is(70)}, 3)
			// <(10 20)> appears for only one customer: infrequent.
			if _, ok := res.Support(Sequence{is(10, 20)}); ok {
				t.Error("<(10 20)> should be infrequent")
			}
		})
	}
}

func mustSupport(t *testing.T, res *Result, seq Sequence, want int) {
	t.Helper()
	got, ok := res.Support(seq)
	if !ok {
		t.Errorf("%v not found as frequent", seq)
		return
	}
	if got != want {
		t.Errorf("support(%v) = %d, want %d", seq, got, want)
	}
}

func TestMaximal(t *testing.T) {
	res, err := (&AprioriAll{}).Mine(paperData(), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	maximal := res.Maximal()
	keys := make(map[string]bool)
	for _, sc := range maximal {
		keys[sc.Seq.Key()] = true
	}
	// The paper's answer set: <(30)(90)> and <(30)(40 70)>.
	if !keys["30|90"] {
		t.Errorf("maximal missing <(30)(90)>: %v", keys)
	}
	if !keys["30|40,70"] {
		t.Errorf("maximal missing <(30)(40 70)>: %v", keys)
	}
	// <(30)> is contained in <(30)(90)>: not maximal.
	if keys["30"] {
		t.Error("<(30)> should not be maximal")
	}
}

func TestMinersAgreeOnSynthetic(t *testing.T) {
	raw, err := synth.Sequences(synth.SequenceConfig{
		NumCustomers: 150, AvgTxPerCust: 6, AvgTxSize: 2,
		AvgSeqPatLen: 3, AvgPatternSize: 1.25,
		NumSeqPatterns: 30, NumItemsets: 80, NumItems: 60,
		CorruptionMean: 0.4, CorruptionSD: 0.1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := FromSynth(raw)
	for _, minSup := range []float64{0.2, 0.1} {
		a, err := (&AprioriAll{}).Mine(data, minSup)
		if err != nil {
			t.Fatal(err)
		}
		g, err := (&GSP{}).Mine(data, minSup)
		if err != nil {
			t.Fatal(err)
		}
		am := supportMap(a)
		gm := supportMap(g)
		if len(am) != len(gm) {
			t.Errorf("minsup %v: AprioriAll %d sequences, GSP %d", minSup, len(am), len(gm))
		}
		for k, v := range am {
			if gm[k] != v {
				t.Errorf("minsup %v: %s: AprioriAll %d, GSP %d", minSup, k, v, gm[k])
			}
		}
	}
}

func supportMap(r *Result) map[string]int {
	out := make(map[string]int)
	for _, sc := range r.All() {
		out[sc.Seq.Key()] = sc.Count
	}
	return out
}

func TestMinersMatchBruteForce(t *testing.T) {
	// Tiny dataset: enumerate all frequent sequences up to 3 items by
	// brute force and compare.
	data := []Sequence{
		{is(1), is(2)},
		{is(1), is(2), is(3)},
		{is(1, 2), is(3)},
		{is(2), is(3)},
	}
	minCount := 2
	// Brute force: candidate space over items 1..3, sequences of up to 3
	// elements with elements of size 1..2.
	universe := []transactions.Itemset{
		is(1), is(2), is(3), is(1, 2), is(1, 3), is(2, 3),
	}
	bf := make(map[string]int)
	var enumerate func(prefix Sequence, itemsLeft int)
	enumerate = func(prefix Sequence, itemsLeft int) {
		if len(prefix) > 0 {
			count := 0
			for _, cust := range data {
				if cust.Contains(prefix) {
					count++
				}
			}
			if count >= minCount {
				bf[prefix.Key()] = count
			} else {
				return // anti-monotone: no extension can be frequent
			}
		}
		if itemsLeft == 0 {
			return
		}
		for _, e := range universe {
			if len(e) <= itemsLeft {
				enumerate(append(prefix.Clone(), e), itemsLeft-len(e))
			}
		}
	}
	enumerate(nil, 3)

	for _, m := range []Miner{&AprioriAll{}, &GSP{}} {
		res, err := m.Mine(data, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		got := supportMap(res)
		for k, v := range bf {
			if got[k] != v {
				t.Errorf("%s: support(%s) = %d, want %d", m.Name(), k, got[k], v)
			}
		}
		for k := range got {
			if _, ok := bf[k]; !ok {
				t.Errorf("%s: unexpected frequent sequence %s", m.Name(), k)
			}
		}
	}
}

func TestGSPGeneratesFewerCandidates(t *testing.T) {
	// The EDBT'96 headline: GSP counts fewer candidates than AprioriAll.
	raw, err := synth.Sequences(synth.SequenceConfig{
		NumCustomers: 200, AvgTxPerCust: 8, AvgTxSize: 2.5,
		AvgSeqPatLen: 4, AvgPatternSize: 1.25,
		NumSeqPatterns: 40, NumItemsets: 100, NumItems: 80,
		CorruptionMean: 0.4, CorruptionSD: 0.1, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := FromSynth(raw)
	a, err := (&AprioriAll{}).Mine(data, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	g, err := (&GSP{}).Mine(data, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	aCands, gCands := 0, 0
	for _, p := range a.Passes {
		aCands += p.Candidates
	}
	for _, p := range g.Passes {
		gCands += p.Candidates
	}
	if gCands >= aCands {
		t.Errorf("GSP candidates %d >= AprioriAll candidates %d", gCands, aCands)
	}
}

func TestValidation(t *testing.T) {
	data := paperData()
	for _, m := range []Miner{&AprioriAll{}, &GSP{}} {
		if _, err := m.Mine(data, 0); !errors.Is(err, ErrBadSupport) {
			t.Errorf("%s: minsup 0 error = %v", m.Name(), err)
		}
		if _, err := m.Mine(data, 2); !errors.Is(err, ErrBadSupport) {
			t.Errorf("%s: minsup 2 error = %v", m.Name(), err)
		}
		if _, err := m.Mine(nil, 0.5); !errors.Is(err, ErrEmptyData) {
			t.Errorf("%s: empty error = %v", m.Name(), err)
		}
	}
}

func TestNoFrequentSequences(t *testing.T) {
	data := []Sequence{
		{is(1)}, {is(2)}, {is(3)}, {is(4)},
	}
	for _, m := range []Miner{&AprioriAll{}, &GSP{}} {
		res, err := m.Mine(data, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if res.NumFrequent() != 0 {
			t.Errorf("%s: frequent = %d", m.Name(), res.NumFrequent())
		}
	}
}

func TestGSPDropHelpers(t *testing.T) {
	s := Sequence{is(1, 2), is(3)}
	if got := dropFirst(s); !got.Equal(Sequence{is(2), is(3)}) {
		t.Errorf("dropFirst = %v", got)
	}
	if got := dropLast(s); !got.Equal(Sequence{is(1, 2)}) {
		t.Errorf("dropLast = %v", got)
	}
	single := Sequence{is(5), is(7)}
	if got := dropFirst(single); !got.Equal(Sequence{is(7)}) {
		t.Errorf("dropFirst singleton = %v", got)
	}
	if got := dropLast(single); !got.Equal(Sequence{is(5)}) {
		t.Errorf("dropLast singleton = %v", got)
	}
}

func TestDropItem(t *testing.T) {
	s := Sequence{is(1, 2), is(3)}
	if got := dropItem(s, 0, 0); !got.Equal(Sequence{is(2), is(3)}) {
		t.Errorf("dropItem(0,0) = %v", got)
	}
	if got := dropItem(s, 1, 0); !got.Equal(Sequence{is(1, 2)}) {
		t.Errorf("dropItem(1,0) = %v", got)
	}
}

func TestAnteMonotoneSupportsOnSynthetic(t *testing.T) {
	raw, err := synth.Sequences(synth.SequenceConfig{
		NumCustomers: 100, AvgTxPerCust: 5, AvgTxSize: 2,
		AvgSeqPatLen: 3, AvgPatternSize: 1.25,
		NumSeqPatterns: 20, NumItemsets: 50, NumItems: 40,
		CorruptionMean: 0.4, CorruptionSD: 0.1, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := FromSynth(raw)
	res, err := (&GSP{}).Mine(data, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Dropping any item from a frequent sequence yields a frequent
	// sequence with at least the same support.
	for _, sc := range res.All() {
		if sc.Seq.NumItems() < 2 {
			continue
		}
		for ei, elem := range sc.Seq {
			for ii := range elem {
				sub := dropItem(sc.Seq, ei, ii)
				sup, ok := res.Support(sub)
				if !ok {
					t.Fatalf("subsequence %v of frequent %v missing", sub, sc.Seq)
				}
				if sup < sc.Count {
					t.Fatalf("support(%v)=%d < support(%v)=%d", sub, sup, sc.Seq, sc.Count)
				}
			}
		}
	}
}

func TestIdSeqKeyAndAppendInt(t *testing.T) {
	if got := idSeqKey([]int{0, 12, 345}); got != "0,12,345" {
		t.Errorf("idSeqKey = %q", got)
	}
	if got := string(appendInt(nil, 0)); got != "0" {
		t.Errorf("appendInt(0) = %q", got)
	}
	if got := string(appendInt(nil, 90210)); got != "90210" {
		t.Errorf("appendInt = %q", got)
	}
}
