package seqmine

import (
	"sort"

	"repro/internal/assoc"
	"repro/internal/transactions"
)

// AprioriAll is the three-phase sequential miner of ICDE'95.
type AprioriAll struct{}

// Name implements Miner.
func (a *AprioriAll) Name() string { return "AprioriAll" }

// Mine implements Miner.
func (a *AprioriAll) Mine(data []Sequence, minSupport float64) (*Result, error) {
	minCount, err := checkInput(data, minSupport)
	if err != nil {
		return nil, err
	}
	res := &Result{MinCount: minCount, NumCustomers: len(data)}

	// Phase 1 — litemsets: itemsets frequent when counted once per
	// customer (contained in any of the customer's transactions).
	litemsets, litemsetSupport := frequentLitemsets(data, minCount)
	if len(litemsets) == 0 {
		res.Passes = append(res.Passes, PassStat{K: 1, Candidates: 0, Frequent: 0})
		return res, nil
	}

	// Phase 2 — transformation: each transaction becomes the set of
	// litemset ids it contains; transactions containing none are dropped.
	transformed := transform(data, litemsets)

	// Phase 3 — level-wise sequence mining over litemset ids.
	// L1: each frequent litemset as a 1-sequence (same support).
	level := make([]idSeqCount, len(litemsets))
	for i := range litemsets {
		level[i] = idSeqCount{seq: []int{i}, count: litemsetSupport[i]}
	}
	res.Passes = append(res.Passes, PassStat{K: 1, Candidates: len(litemsets), Frequent: len(level)})
	res.Levels = append(res.Levels, toSeqCounts(level, litemsets))

	for k := 2; len(level) > 0; k++ {
		cands := seqCandidates(level)
		if len(cands) == 0 {
			break
		}
		counts := make([]int, len(cands))
		for _, cust := range transformed {
			for ci, c := range cands {
				if containsIDSeq(cust, c) {
					counts[ci]++
				}
			}
		}
		level = nil
		for ci, c := range counts {
			if c >= minCount {
				level = append(level, idSeqCount{seq: cands[ci], count: c})
			}
		}
		res.Passes = append(res.Passes, PassStat{K: k, Candidates: len(cands), Frequent: len(level)})
		if len(level) > 0 {
			res.Levels = append(res.Levels, toSeqCounts(level, litemsets))
		}
	}
	return res, nil
}

// idSeqCount is a sequence over litemset ids with its support.
type idSeqCount struct {
	seq   []int
	count int
}

// frequentLitemsets runs a per-customer Apriori over itemsets: support of
// an itemset is the number of customers with at least one transaction
// containing it. Returns the litemsets in deterministic (lexicographic)
// order alongside their supports.
func frequentLitemsets(data []Sequence, minCount int) ([]transactions.Itemset, []int) {
	// L1: count items once per customer.
	itemCount := make(map[int]int)
	for _, cust := range data {
		seen := make(map[int]struct{})
		for _, tx := range cust {
			for _, item := range tx {
				seen[item] = struct{}{}
			}
		}
		for item := range seen {
			itemCount[item]++
		}
	}
	var level []transactions.Itemset
	var supports []int
	var items []int
	for item, c := range itemCount {
		if c >= minCount {
			items = append(items, item)
		}
	}
	sort.Ints(items)
	for _, item := range items {
		level = append(level, transactions.Itemset{item})
		supports = append(supports, itemCount[item])
	}

	var all []transactions.Itemset
	var allSupports []int
	for len(level) > 0 {
		all = append(all, level...)
		allSupports = append(allSupports, supports...)
		cands := assoc.AprioriGen(level)
		if len(cands) == 0 {
			break
		}
		counts := make([]int, len(cands))
		for _, cust := range data {
			for ci, c := range cands {
				for _, tx := range cust {
					if tx.ContainsAll(c) {
						counts[ci]++
						break
					}
				}
			}
		}
		level = level[:0]
		supports = supports[:0]
		for ci, c := range counts {
			if c >= minCount {
				level = append(level, cands[ci])
				supports = append(supports, c)
			}
		}
	}
	return all, allSupports
}

// transform maps each customer to the per-transaction sets of litemset ids,
// dropping empty transactions and empty customers.
func transform(data []Sequence, litemsets []transactions.Itemset) [][][]int {
	out := make([][][]int, 0, len(data))
	for _, cust := range data {
		var txs [][]int
		for _, tx := range cust {
			var ids []int
			for id, l := range litemsets {
				if tx.ContainsAll(l) {
					ids = append(ids, id)
				}
			}
			if len(ids) > 0 {
				txs = append(txs, ids)
			}
		}
		if len(txs) > 0 {
			out = append(out, txs)
		}
	}
	return out
}

// seqCandidates implements the ICDE'95 join: all ordered pairs of frequent
// (k-1)-sequences sharing their first k-2 elements produce a candidate
// (including self-joins, which model repeated litemsets), followed by the
// drop-one subsequence prune.
func seqCandidates(level []idSeqCount) [][]int {
	prevSet := make(map[string]struct{}, len(level))
	for _, sc := range level {
		prevSet[idSeqKey(sc.seq)] = struct{}{}
	}
	// Group by (k-2)-prefix for the join.
	groups := make(map[string][]int) // prefix key -> last elements
	order := make([]string, 0)
	prefixOf := make(map[string][]int)
	for _, sc := range level {
		k := len(sc.seq)
		p := idSeqKey(sc.seq[:k-1])
		if _, ok := groups[p]; !ok {
			order = append(order, p)
			prefixOf[p] = append([]int(nil), sc.seq[:k-1]...)
		}
		groups[p] = append(groups[p], sc.seq[k-1])
	}
	var cands [][]int
	buf := make([]int, 0, 16)
	for _, p := range order {
		lasts := groups[p]
		prefix := prefixOf[p]
		for _, x := range lasts {
			for _, y := range lasts {
				cand := make([]int, 0, len(prefix)+2)
				cand = append(cand, prefix...)
				cand = append(cand, x, y)
				// Prune: every drop-one subsequence must be frequent.
				if allDropOneFrequent(cand, prevSet, &buf) {
					cands = append(cands, cand)
				}
			}
		}
	}
	return cands
}

func allDropOneFrequent(cand []int, prevSet map[string]struct{}, buf *[]int) bool {
	for drop := range cand {
		b := (*buf)[:0]
		for i, v := range cand {
			if i != drop {
				b = append(b, v)
			}
		}
		if _, ok := prevSet[idSeqKey(b)]; !ok {
			return false
		}
	}
	return true
}

// idSeqKey joins ids into a canonical key without fmt in the hot path.
func idSeqKey(seq []int) string {
	out := make([]byte, 0, len(seq)*3)
	for i, v := range seq {
		if i > 0 {
			out = append(out, ',')
		}
		out = appendInt(out, v)
	}
	return string(out)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// containsIDSeq checks greedy subsequence containment of a litemset-id
// sequence in a transformed customer.
func containsIDSeq(cust [][]int, seq []int) bool {
	i := 0
	for _, want := range seq {
		for i < len(cust) && !intSliceHas(cust[i], want) {
			i++
		}
		if i >= len(cust) {
			return false
		}
		i++
	}
	return true
}

func intSliceHas(s []int, v int) bool {
	// Transformed ids are ascending (litemsets scanned in order).
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}

// toSeqCounts converts id sequences back to full Sequences for the Result.
func toSeqCounts(level []idSeqCount, litemsets []transactions.Itemset) []SeqCount {
	out := make([]SeqCount, len(level))
	for i, sc := range level {
		seq := make(Sequence, len(sc.seq))
		for j, id := range sc.seq {
			seq[j] = litemsets[id]
		}
		out[i] = SeqCount{Seq: seq, Count: sc.count}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Seq.Key() < out[j].Seq.Key()
	})
	return out
}
