package seqmine

import (
	"sort"

	"repro/internal/transactions"
)

// GSP is the generalized sequential-pattern miner of EDBT'96. It mines
// item-level sequences directly (no litemset/transformation phases) and
// its join produces dramatically fewer candidates than AprioriAll: two
// frequent (k-1)-sequences join when dropping the first item of one yields
// the same sequence as dropping the last item of the other.
//
// The paper's gap generalizations are supported: MaxGap/MinGap constrain
// the distance (in transaction positions) between consecutive matched
// elements. With a max-gap constraint, general subsequences are no longer
// anti-monotone, so candidate pruning switches to the paper's contiguous
// subsequences and containment uses the backtracking procedure instead of
// the greedy scan. Sliding windows and taxonomies are not implemented.
type GSP struct {
	// MaxGap, when positive, is the largest allowed gap between the
	// transactions matching consecutive pattern elements.
	MaxGap int
	// MinGap, when positive, is the smallest allowed gap (1 = adjacent
	// transactions allowed, the default).
	MinGap int
}

// containsWithGaps reports whether sub occurs in s under the gap
// constraints, by backtracking over the element-to-transaction assignment.
func (g *GSP) containsWithGaps(s Sequence, sub Sequence) bool {
	if len(sub) == 0 {
		return true
	}
	minGap := g.MinGap
	if minGap < 1 {
		minGap = 1
	}
	var rec func(prevIdx, pi int) bool
	rec = func(prevIdx, pi int) bool {
		lo := prevIdx + minGap
		hi := len(s) - 1
		if g.MaxGap > 0 && prevIdx+g.MaxGap < hi {
			hi = prevIdx + g.MaxGap
		}
		for i := lo; i <= hi; i++ {
			if s[i].ContainsAll(sub[pi]) {
				if pi+1 == len(sub) {
					return true
				}
				if rec(i, pi+1) {
					return true
				}
			}
		}
		return false
	}
	// First element: any starting transaction.
	for i := 0; i < len(s); i++ {
		if s[i].ContainsAll(sub[0]) {
			if len(sub) == 1 {
				return true
			}
			if rec(i, 1) {
				return true
			}
		}
	}
	return false
}

// contains dispatches to the greedy scan when unconstrained (faster and
// equivalent) and to backtracking otherwise.
func (g *GSP) contains(s, sub Sequence) bool {
	if g.MaxGap <= 0 && g.MinGap <= 1 {
		return s.Contains(sub)
	}
	return g.containsWithGaps(s, sub)
}

// Name implements Miner.
func (g *GSP) Name() string { return "GSP" }

// Mine implements Miner.
func (g *GSP) Mine(data []Sequence, minSupport float64) (*Result, error) {
	minCount, err := checkInput(data, minSupport)
	if err != nil {
		return nil, err
	}
	res := &Result{MinCount: minCount, NumCustomers: len(data)}

	// L1: items frequent per customer.
	itemCount := make(map[int]int)
	for _, cust := range data {
		seen := make(map[int]struct{})
		for _, tx := range cust {
			for _, item := range tx {
				seen[item] = struct{}{}
			}
		}
		for item := range seen {
			itemCount[item]++
		}
	}
	var freqItems []int
	for item, c := range itemCount {
		if c >= minCount {
			freqItems = append(freqItems, item)
		}
	}
	sort.Ints(freqItems)
	level := make([]SeqCount, len(freqItems))
	for i, item := range freqItems {
		level[i] = SeqCount{
			Seq:   Sequence{transactions.Itemset{item}},
			Count: itemCount[item],
		}
	}
	res.Passes = append(res.Passes, PassStat{K: 1, Candidates: len(itemCount), Frequent: len(level)})
	if len(level) == 0 {
		return res, nil
	}
	res.Levels = append(res.Levels, level)

	for k := 2; ; k++ {
		var cands []Sequence
		if k == 2 {
			cands = gspCandidates2(freqItems)
		} else {
			cands = gspJoin(level, g.MaxGap > 0)
		}
		if len(cands) == 0 {
			break
		}
		counts := make([]int, len(cands))
		for _, cust := range data {
			for ci, c := range cands {
				if g.contains(cust, c) {
					counts[ci]++
				}
			}
		}
		level = nil
		for ci, c := range counts {
			if c >= minCount {
				level = append(level, SeqCount{Seq: cands[ci], Count: c})
			}
		}
		sort.Slice(level, func(i, j int) bool { return level[i].Seq.Key() < level[j].Seq.Key() })
		res.Passes = append(res.Passes, PassStat{K: k, Candidates: len(cands), Frequent: len(level)})
		if len(level) == 0 {
			break
		}
		res.Levels = append(res.Levels, level)
	}
	return res, nil
}

// gspCandidates2 builds C2 from frequent items x, y: <(x)(y)>, <(y)(x)>
// for all pairs including x==y for the sequential form, and <(x y)> for
// x < y (an element is a set, so no repeats within one element).
func gspCandidates2(items []int) []Sequence {
	var out []Sequence
	for _, x := range items {
		for _, y := range items {
			out = append(out, Sequence{
				transactions.Itemset{x},
				transactions.Itemset{y},
			})
		}
	}
	for i, x := range items {
		for _, y := range items[i+1:] {
			out = append(out, Sequence{transactions.NewItemset(x, y)})
		}
	}
	return out
}

// gspJoin implements the EDBT'96 join and prune for k >= 3. s1 joins s2
// when dropFirst(s1) == dropLast(s2); the candidate is s1 extended by the
// last item of s2, merged into the final element if that item was not
// alone in s2's last element, appended as a new element otherwise. With a
// max-gap constraint the prune only uses contiguous subsequences, because
// general subsequences are not anti-monotone under gaps.
func gspJoin(level []SeqCount, contiguousOnly bool) []Sequence {
	prevSet := make(map[string]struct{}, len(level))
	for _, sc := range level {
		prevSet[sc.Seq.Key()] = struct{}{}
	}
	// Group sequences by their dropFirst key for join lookup.
	byDropFirst := make(map[string][]Sequence)
	for _, sc := range level {
		key := dropFirst(sc.Seq).Key()
		byDropFirst[key] = append(byDropFirst[key], sc.Seq)
	}
	var cands []Sequence
	seen := make(map[string]struct{})
	for _, sc := range level {
		s2 := sc.Seq
		dl := dropLast(s2)
		for _, s1 := range byDropFirst[dl.Key()] {
			cand := joinSequences(s1, s2)
			key := cand.Key()
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			if gspPrune(cand, prevSet, contiguousOnly) {
				cands = append(cands, cand)
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Key() < cands[j].Key() })
	return cands
}

// dropFirst removes the first item of the first element (removing the
// element if it becomes empty).
func dropFirst(s Sequence) Sequence {
	out := make(Sequence, 0, len(s))
	first := s[0]
	if len(first) > 1 {
		out = append(out, first[1:])
	}
	out = append(out, s[1:]...)
	return out
}

// dropLast removes the last item of the last element.
func dropLast(s Sequence) Sequence {
	out := make(Sequence, 0, len(s))
	out = append(out, s[:len(s)-1]...)
	last := s[len(s)-1]
	if len(last) > 1 {
		out = append(out, last[:len(last)-1])
	}
	return out
}

// joinSequences extends s1 with the last item of s2 per the GSP rule.
func joinSequences(s1, s2 Sequence) Sequence {
	lastElem := s2[len(s2)-1]
	lastItem := lastElem[len(lastElem)-1]
	out := s1.Clone()
	if len(lastElem) == 1 {
		// The item was alone in s2's last element: new element.
		out = append(out, transactions.Itemset{lastItem})
	} else {
		// Merge into s1's final element.
		out[len(out)-1] = out[len(out)-1].Union(transactions.Itemset{lastItem})
	}
	return out
}

// gspPrune requires every (k-1)-subsequence obtained by dropping a single
// item to be frequent. Without time constraints, support is anti-monotone
// under any item deletion. With constraints (contiguousOnly) only
// contiguous subsequences are anti-monotone: those dropping an item from
// the first or last element, or from an element of size >= 2.
func gspPrune(cand Sequence, prevSet map[string]struct{}, contiguousOnly bool) bool {
	last := len(cand) - 1
	for ei, elem := range cand {
		if contiguousOnly && ei != 0 && ei != last && len(elem) < 2 {
			continue
		}
		for ii := range elem {
			sub := dropItem(cand, ei, ii)
			if _, ok := prevSet[sub.Key()]; !ok {
				return false
			}
		}
	}
	return true
}

// dropItem removes item ii of element ei, dropping the element if emptied.
func dropItem(s Sequence, ei, ii int) Sequence {
	out := make(Sequence, 0, len(s))
	for i, elem := range s {
		if i != ei {
			out = append(out, elem)
			continue
		}
		if len(elem) == 1 {
			continue
		}
		ne := make(transactions.Itemset, 0, len(elem)-1)
		ne = append(ne, elem[:ii]...)
		ne = append(ne, elem[ii+1:]...)
		out = append(out, ne)
	}
	return out
}
