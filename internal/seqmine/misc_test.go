package seqmine

import (
	"testing"

	"repro/internal/synth"
)

func TestMaximalCoversAllFrequent(t *testing.T) {
	raw, err := synth.Sequences(synth.SequenceConfig{
		NumCustomers: 120, AvgTxPerCust: 6, AvgTxSize: 2,
		AvgSeqPatLen: 3, AvgPatternSize: 1.25,
		NumSeqPatterns: 25, NumItemsets: 60, NumItems: 50,
		CorruptionMean: 0.4, CorruptionSD: 0.1, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := FromSynth(raw)
	res, err := (&GSP{}).Mine(data, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	maximal := res.Maximal()
	if len(maximal) == 0 {
		t.Fatal("no maximal sequences")
	}
	// Every frequent sequence is contained in some maximal sequence.
	for _, sc := range res.All() {
		covered := false
		for _, m := range maximal {
			if m.Seq.Contains(sc.Seq) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("frequent %v not covered by any maximal sequence", sc.Seq)
		}
	}
	// No maximal sequence is contained in a different maximal sequence.
	for i, a := range maximal {
		for j, b := range maximal {
			if i == j || a.Seq.Equal(b.Seq) {
				continue
			}
			if b.Seq.Contains(a.Seq) {
				t.Fatalf("maximal %v contained in maximal %v", a.Seq, b.Seq)
			}
		}
	}
}

func TestPassStatsMonotoneK(t *testing.T) {
	data := paperData()
	for _, m := range []Miner{&AprioriAll{}, &GSP{}} {
		res, err := m.Mine(data, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range res.Passes {
			if p.K != i+1 {
				t.Errorf("%s: pass %d has K=%d", m.Name(), i, p.K)
			}
			if p.Frequent > p.Candidates && p.Candidates > 0 {
				t.Errorf("%s: pass %d frequent %d > candidates %d",
					m.Name(), i, p.Frequent, p.Candidates)
			}
		}
	}
}

func TestFromSynthEmpty(t *testing.T) {
	if got := FromSynth(nil); len(got) != 0 {
		t.Errorf("FromSynth(nil) = %v", got)
	}
}

func TestSupportCacheInvalidation(t *testing.T) {
	res, err := (&GSP{}).Mine(paperData(), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// Two lookups, second from the cache, must agree.
	s1, ok1 := res.Support(Sequence{is(30)})
	s2, ok2 := res.Support(Sequence{is(30)})
	if s1 != s2 || ok1 != ok2 {
		t.Errorf("cache inconsistency: %d/%v vs %d/%v", s1, ok1, s2, ok2)
	}
}
