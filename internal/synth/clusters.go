package synth

import (
	"fmt"
	"math"
	"math/rand"
)

// Points is a set of d-dimensional points with ground-truth labels, used by
// the clustering evaluations. Label -1 marks noise points.
type Points struct {
	X      [][]float64
	Labels []int
}

// GaussianConfig parameterises a spherical Gaussian-mixture generator.
type GaussianConfig struct {
	NumPoints  int
	NumCluster int
	Dims       int
	Spread     float64 // per-cluster standard deviation
	Separation float64 // side of the hypercube the centres are drawn from
	Seed       int64
}

// GaussianMixture draws NumPoints points from NumCluster spherical
// Gaussians whose centres are uniform in [0, Separation]^Dims. Points are
// assigned to clusters round-robin so all clusters have near-equal size.
func GaussianMixture(c GaussianConfig) (*Points, error) {
	if c.NumPoints <= 0 || c.NumCluster <= 0 || c.Dims <= 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, c)
	}
	if c.Spread <= 0 || c.Separation <= 0 {
		return nil, fmt.Errorf("%w: non-positive spread/separation", ErrBadConfig)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	centres := make([][]float64, c.NumCluster)
	for k := range centres {
		centres[k] = make([]float64, c.Dims)
		for d := range centres[k] {
			centres[k][d] = rng.Float64() * c.Separation
		}
	}
	p := &Points{
		X:      make([][]float64, c.NumPoints),
		Labels: make([]int, c.NumPoints),
	}
	for i := 0; i < c.NumPoints; i++ {
		k := i % c.NumCluster
		x := make([]float64, c.Dims)
		for d := range x {
			x[d] = centres[k][d] + rng.NormFloat64()*c.Spread
		}
		p.X[i] = x
		p.Labels[i] = k
	}
	return p, nil
}

// GridConfig parameterises the BIRCH-style "DS1" dataset: cluster centres
// on a regular grid, equal-size spherical clusters.
type GridConfig struct {
	NumPoints  int
	GridSide   int     // clusters form a GridSide x GridSide grid
	CentreDist float64 // spacing between adjacent grid centres
	Spread     float64 // cluster standard deviation
	Seed       int64
}

// GaussianGrid generates the BIRCH DS1-style grid mixture in two
// dimensions.
func GaussianGrid(c GridConfig) (*Points, error) {
	if c.NumPoints <= 0 || c.GridSide <= 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, c)
	}
	if c.CentreDist <= 0 || c.Spread <= 0 {
		return nil, fmt.Errorf("%w: non-positive spacing/spread", ErrBadConfig)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	k := c.GridSide * c.GridSide
	p := &Points{
		X:      make([][]float64, c.NumPoints),
		Labels: make([]int, c.NumPoints),
	}
	for i := 0; i < c.NumPoints; i++ {
		ci := i % k
		cx := float64(ci%c.GridSide) * c.CentreDist
		cy := float64(ci/c.GridSide) * c.CentreDist
		p.X[i] = []float64{
			cx + rng.NormFloat64()*c.Spread,
			cy + rng.NormFloat64()*c.Spread,
		}
		p.Labels[i] = ci
	}
	return p, nil
}

// ShapeKind selects a non-convex benchmark shape for density-based
// clustering evaluations (DBSCAN paper Fig. 1-style databases).
type ShapeKind int

const (
	// TwoMoons is two interleaving half-circles.
	TwoMoons ShapeKind = iota
	// Rings is two concentric circles.
	Rings
)

// ShapeConfig parameterises the shape generator.
type ShapeConfig struct {
	Kind      ShapeKind
	NumPoints int
	Jitter    float64 // Gaussian jitter added to each coordinate
	NoiseFrac float64 // fraction of uniform background noise points (label -1)
	Seed      int64
}

// Shapes generates a two-dimensional non-convex dataset with ground truth.
func Shapes(c ShapeConfig) (*Points, error) {
	if c.NumPoints <= 0 {
		return nil, fmt.Errorf("%w: NumPoints=%d", ErrBadConfig, c.NumPoints)
	}
	if c.Jitter < 0 || c.NoiseFrac < 0 || c.NoiseFrac >= 1 {
		return nil, fmt.Errorf("%w: jitter/noise", ErrBadConfig)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	nNoise := int(c.NoiseFrac * float64(c.NumPoints))
	nSignal := c.NumPoints - nNoise
	p := &Points{
		X:      make([][]float64, 0, c.NumPoints),
		Labels: make([]int, 0, c.NumPoints),
	}
	for i := 0; i < nSignal; i++ {
		label := i % 2
		var x, y float64
		theta := rng.Float64() * math.Pi
		switch c.Kind {
		case TwoMoons:
			if label == 0 {
				x = math.Cos(theta)
				y = math.Sin(theta)
			} else {
				x = 1 - math.Cos(theta)
				y = 0.5 - math.Sin(theta)
			}
		case Rings:
			theta = rng.Float64() * 2 * math.Pi
			r := 1.0
			if label == 1 {
				r = 2.5
			}
			x = r * math.Cos(theta)
			y = r * math.Sin(theta)
		default:
			return nil, fmt.Errorf("%w: unknown shape %d", ErrBadConfig, c.Kind)
		}
		p.X = append(p.X, []float64{
			x + rng.NormFloat64()*c.Jitter,
			y + rng.NormFloat64()*c.Jitter,
		})
		p.Labels = append(p.Labels, label)
	}
	// Uniform background noise over the bounding box (with margin).
	for i := 0; i < nNoise; i++ {
		p.X = append(p.X, []float64{
			uniform(rng, -4, 4),
			uniform(rng, -4, 4),
		})
		p.Labels = append(p.Labels, -1)
	}
	return p, nil
}
