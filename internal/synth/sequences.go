package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/stats"
	"repro/internal/transactions"
)

// Sequence is an ordered list of itemsets (one customer's transaction
// history, each element one transaction's itemset).
type Sequence []transactions.Itemset

// Clone returns a deep copy of the sequence.
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	for i, e := range s {
		out[i] = e.Clone()
	}
	return out
}

// SequenceConfig parameterises the customer-sequence generator using the
// ICDE'95/EDBT'96 notation (the "C·T·S·I" datasets).
type SequenceConfig struct {
	NumCustomers   int     // |D|: number of customer sequences
	AvgTxPerCust   float64 // |C|: mean transactions per customer (Poisson)
	AvgTxSize      float64 // |T|: mean items per transaction (Poisson)
	AvgSeqPatLen   float64 // |S|: mean length (in itemsets) of maximal potentially large sequences
	AvgPatternSize float64 // |I|: mean size of itemsets inside those sequences
	NumSeqPatterns int     // N_S: number of maximal potentially large sequences
	NumItemsets    int     // N_I: number of maximal potentially large itemsets feeding the sequences
	NumItems       int     // N: item universe size
	CorruptionMean float64
	CorruptionSD   float64
	Seed           int64
}

// C10T2S4I1 returns the EDBT'96 baseline configuration C10.T2.5.S4.I1.25
// scaled to d customers.
func C10T2S4I1(d int, seed int64) SequenceConfig {
	return SequenceConfig{
		NumCustomers:   d,
		AvgTxPerCust:   10,
		AvgTxSize:      2.5,
		AvgSeqPatLen:   4,
		AvgPatternSize: 1.25,
		NumSeqPatterns: 500,
		NumItemsets:    2500,
		NumItems:       1000,
		CorruptionMean: 0.5,
		CorruptionSD:   0.1,
		Seed:           seed,
	}
}

func (c SequenceConfig) validate() error {
	switch {
	case c.NumCustomers <= 0:
		return fmt.Errorf("%w: NumCustomers=%d", ErrBadConfig, c.NumCustomers)
	case c.AvgTxPerCust <= 0, c.AvgTxSize <= 0, c.AvgSeqPatLen <= 0, c.AvgPatternSize <= 0:
		return fmt.Errorf("%w: non-positive mean", ErrBadConfig)
	case c.NumSeqPatterns <= 0 || c.NumItemsets <= 0:
		return fmt.Errorf("%w: pattern pool sizes", ErrBadConfig)
	case c.NumItems <= 1:
		return fmt.Errorf("%w: NumItems=%d", ErrBadConfig, c.NumItems)
	}
	return nil
}

// seqPattern is a potentially large sequence with weight and corruption.
type seqPattern struct {
	elements   []transactions.Itemset
	weight     float64
	corruption float64
}

// Sequences generates customer sequences: first a pool of potentially large
// itemsets (as in the basket generator), then a pool of potentially large
// sequences whose elements are drawn from that pool, then customers whose
// transaction histories are filled from weighted sequences subject to
// corruption.
func Sequences(c SequenceConfig) ([]Sequence, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))

	// Pool of itemsets used as sequence elements.
	bc := BasketConfig{
		NumTransactions: 1, // unused by generatePatterns
		AvgTxSize:       c.AvgTxSize,
		AvgPatternSize:  c.AvgPatternSize,
		NumPatterns:     c.NumItemsets,
		NumItems:        c.NumItems,
		CorruptionMean:  c.CorruptionMean,
		CorruptionSD:    c.CorruptionSD,
		CorrelationMean: 0.5,
	}
	elemPool := generatePatterns(bc, rng)
	elemWeights := make([]float64, len(elemPool))
	for i, p := range elemPool {
		elemWeights[i] = p.weight
	}

	// Pool of potentially large sequences.
	pats := make([]seqPattern, c.NumSeqPatterns)
	totalW := 0.0
	for p := range pats {
		n := stats.Poisson(rng, c.AvgSeqPatLen-1) + 1
		elems := make([]transactions.Itemset, n)
		for i := range elems {
			elems[i] = elemPool[stats.WeightedChoice(rng, elemWeights)].items
		}
		w := rng.ExpFloat64()
		corr := rng.NormFloat64()*c.CorruptionSD + c.CorruptionMean
		if corr < 0 {
			corr = 0
		}
		if corr > 1 {
			corr = 1
		}
		pats[p] = seqPattern{elements: elems, weight: w, corruption: corr}
		totalW += w
	}
	weights := make([]float64, len(pats))
	for i := range pats {
		pats[i].weight /= totalW
		weights[i] = pats[i].weight
	}

	out := make([]Sequence, 0, c.NumCustomers)
	for cust := 0; cust < c.NumCustomers; cust++ {
		nTx := stats.Poisson(rng, c.AvgTxPerCust-1) + 1
		seq := make(Sequence, nTx)
		for i := range seq {
			seq[i] = transactions.Itemset{}
		}
		// Fill the customer's history from weighted sequence patterns:
		// each chosen pattern is laid across the history preserving order,
		// skipping elements according to corruption.
		fills := 0
		for attempts := 0; fills < nTx && attempts < 4*nTx+8; attempts++ {
			sp := pats[stats.WeightedChoice(rng, weights)]
			pos := 0
			if nTx > len(sp.elements) {
				pos = rng.Intn(nTx - len(sp.elements) + 1)
			}
			for _, elem := range sp.elements {
				if pos >= nTx {
					break
				}
				if rng.Float64() < sp.corruption {
					continue
				}
				seq[pos] = seq[pos].Union(elem)
				pos++
				fills++
			}
		}
		// Ensure no transaction is empty: pad with a random item.
		for i := range seq {
			if len(seq[i]) == 0 {
				seq[i] = transactions.NewItemset(rng.Intn(c.NumItems))
			}
		}
		out = append(out, seq)
	}
	return out, nil
}
