// Package synth reimplements the synthetic workload generators used by the
// canonical evaluations of the surveyed mining algorithms:
//
//   - Quest-style market-basket generator (Agrawal & Srikant, VLDB'94 §4),
//     the "T·I·D" datasets such as T10.I4.D100K;
//   - Quest-style customer-sequence generator (Agrawal & Srikant, ICDE'95 §5;
//     Srikant & Agrawal, EDBT'96), the "C·T·S·I" datasets;
//   - the classification benchmark functions F1–F10 over the nine-attribute
//     person schema (Agrawal, Imielinski & Swami; reused by SLIQ et al.);
//   - Gaussian-mixture and non-convex shape generators for clustering
//     evaluations (CLARANS, DBSCAN, BIRCH).
//
// The original IBM Quest generator binary is proprietary and long
// unavailable; this package follows the published descriptions, which fully
// specify the distributions. All generators are deterministic given a seed.
package synth

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/stats"
	"repro/internal/transactions"
)

// BasketConfig parameterises the market-basket generator using the
// VLDB'94 notation.
type BasketConfig struct {
	NumTransactions int     // |D|
	AvgTxSize       float64 // |T|: mean transaction size (Poisson)
	AvgPatternSize  float64 // |I|: mean size of maximal potentially large itemsets (Poisson)
	NumPatterns     int     // |L|: number of maximal potentially large itemsets
	NumItems        int     // N: item universe size
	CorruptionMean  float64 // mean corruption level (paper: 0.5)
	CorruptionSD    float64 // corruption s.d. (paper: 0.1)
	CorrelationMean float64 // mean fraction of items shared with previous pattern (paper: 0.5)
	Seed            int64
}

// T10I4 returns the paper's default configuration scaled to d transactions:
// |T|=10, |I|=4, |L|=2000 scaled with the item universe, N=1000 by default.
func T10I4(d int, seed int64) BasketConfig {
	return BasketConfig{
		NumTransactions: d,
		AvgTxSize:       10,
		AvgPatternSize:  4,
		NumPatterns:     2000,
		NumItems:        1000,
		CorruptionMean:  0.5,
		CorruptionSD:    0.1,
		CorrelationMean: 0.5,
		Seed:            seed,
	}
}

// TxI(t, i, d) builds a Tt.Ii.Dd configuration with the paper's remaining
// defaults.
func TxI(t, i float64, d int, seed int64) BasketConfig {
	c := T10I4(d, seed)
	c.AvgTxSize = t
	c.AvgPatternSize = i
	return c
}

// ErrBadConfig reports an invalid generator configuration.
var ErrBadConfig = errors.New("synth: invalid configuration")

func (c BasketConfig) validate() error {
	switch {
	case c.NumTransactions <= 0:
		return fmt.Errorf("%w: NumTransactions=%d", ErrBadConfig, c.NumTransactions)
	case c.AvgTxSize <= 0:
		return fmt.Errorf("%w: AvgTxSize=%v", ErrBadConfig, c.AvgTxSize)
	case c.AvgPatternSize <= 0:
		return fmt.Errorf("%w: AvgPatternSize=%v", ErrBadConfig, c.AvgPatternSize)
	case c.NumPatterns <= 0:
		return fmt.Errorf("%w: NumPatterns=%d", ErrBadConfig, c.NumPatterns)
	case c.NumItems <= 1:
		return fmt.Errorf("%w: NumItems=%d", ErrBadConfig, c.NumItems)
	}
	return nil
}

// pattern is a potentially large itemset with its selection weight and
// corruption level.
type pattern struct {
	items      transactions.Itemset
	weight     float64
	corruption float64
}

// generatePatterns builds the pool of maximal potentially large itemsets:
// sizes are Poisson(|I|) with minimum 1; a fraction of each pattern's items
// (exponentially distributed with the correlation mean) is drawn from the
// previous pattern to model cross-pattern correlation; weights are
// exponential and normalised; corruption levels are clipped normals.
func generatePatterns(c BasketConfig, rng *rand.Rand) []pattern {
	pats := make([]pattern, c.NumPatterns)
	totalW := 0.0
	var prev transactions.Itemset
	for p := range pats {
		size := stats.Poisson(rng, c.AvgPatternSize-1) + 1
		if size > c.NumItems {
			size = c.NumItems
		}
		items := make(map[int]struct{}, size)
		if len(prev) > 0 {
			frac := stats.Exponential(rng, c.CorrelationMean)
			if frac > 1 {
				frac = 1
			}
			nShared := int(frac * float64(size))
			for _, idx := range stats.SampleWithoutReplacement(rng, len(prev), nShared) {
				items[prev[idx]] = struct{}{}
			}
		}
		for len(items) < size {
			items[rng.Intn(c.NumItems)] = struct{}{}
		}
		flat := make([]int, 0, len(items))
		for it := range items {
			flat = append(flat, it)
		}
		w := rng.ExpFloat64()
		corr := rng.NormFloat64()*c.CorruptionSD + c.CorruptionMean
		if corr < 0 {
			corr = 0
		}
		if corr > 1 {
			corr = 1
		}
		pats[p] = pattern{items: transactions.NewItemset(flat...), weight: w, corruption: corr}
		prev = pats[p].items
		totalW += w
	}
	for p := range pats {
		pats[p].weight /= totalW
	}
	return pats
}

// Baskets generates a transaction database per the configuration. Each
// transaction has a Poisson(|T|) target size and is filled by repeatedly
// drawing weighted patterns, dropping items from each according to its
// corruption level; a pattern that overflows the remaining budget is
// admitted whole half the time (as in the paper) and otherwise discarded.
func Baskets(c BasketConfig) (*transactions.DB, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	pats := generatePatterns(c, rng)
	weights := make([]float64, len(pats))
	for i, p := range pats {
		weights[i] = p.weight
	}
	db := transactions.NewDB()
	for i := 0; i < c.NumTransactions; i++ {
		target := stats.Poisson(rng, c.AvgTxSize-1) + 1
		got := make(map[int]struct{}, target)
		// Bound the fill loop: badly corrupted draws may add nothing.
		for attempts := 0; len(got) < target && attempts < 8*target+16; attempts++ {
			pi := stats.WeightedChoice(rng, weights)
			if pi < 0 {
				break
			}
			p := pats[pi]
			kept := make([]int, 0, len(p.items))
			for _, item := range p.items {
				if rng.Float64() >= p.corruption {
					kept = append(kept, item)
				}
			}
			if len(kept) == 0 {
				continue
			}
			if len(got)+len(kept) > target {
				// Paper: admit oversize pattern in half the cases.
				if rng.Intn(2) == 0 {
					continue
				}
			}
			for _, item := range kept {
				got[item] = struct{}{}
			}
		}
		if len(got) == 0 {
			got[rng.Intn(c.NumItems)] = struct{}{}
		}
		flat := make([]int, 0, len(got))
		for item := range got {
			flat = append(flat, item)
		}
		if err := db.Add(flat...); err != nil {
			return nil, err
		}
	}
	return db, nil
}
