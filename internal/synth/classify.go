package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// The classification benchmark of Agrawal, Imielinski & Swami (reused by
// SLIQ, SPRINT and the decision-tree literature) generates people with nine
// attributes and labels them "Group A" / "Group B" with one of ten
// predicate functions F1..F10 of increasing difficulty.

// person attribute column indices in the generated table.
const (
	ColSalary = iota
	ColCommission
	ColAge
	ColELevel
	ColCar
	ColZipcode
	ColHValue
	ColHYears
	ColLoan
	colClass
)

// ClassifyConfig parameterises the classification-benchmark generator.
type ClassifyConfig struct {
	NumRows  int
	Function int     // 1..10, selecting F1..F10
	Noise    float64 // probability of flipping the label (paper: 0 or 0.05/0.10)
	Seed     int64
}

// NumClassifyFunctions is the number of benchmark labelling functions.
const NumClassifyFunctions = 10

// Classify generates a labelled table for the selected function.
func Classify(c ClassifyConfig) (*dataset.Table, error) {
	if c.NumRows <= 0 {
		return nil, fmt.Errorf("%w: NumRows=%d", ErrBadConfig, c.NumRows)
	}
	if c.Function < 1 || c.Function > NumClassifyFunctions {
		return nil, fmt.Errorf("%w: Function=%d", ErrBadConfig, c.Function)
	}
	if c.Noise < 0 || c.Noise > 1 {
		return nil, fmt.Errorf("%w: Noise=%v", ErrBadConfig, c.Noise)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	t := dataset.New(
		dataset.NewNumericAttribute("salary"),
		dataset.NewNumericAttribute("commission"),
		dataset.NewNumericAttribute("age"),
		dataset.NewNumericAttribute("elevel"),
		dataset.NewNumericAttribute("car"),
		dataset.NewNumericAttribute("zipcode"),
		dataset.NewNumericAttribute("hvalue"),
		dataset.NewNumericAttribute("hyears"),
		dataset.NewNumericAttribute("loan"),
		dataset.NewCategoricalAttribute("group", "A", "B"),
	)
	t.ClassIndex = colClass
	for i := 0; i < c.NumRows; i++ {
		p := randomPerson(rng)
		label := 1.0 // Group B
		if groupA(c.Function, p) {
			label = 0.0
		}
		if c.Noise > 0 && rng.Float64() < c.Noise {
			label = 1 - label
		}
		row := append(p[:], label)
		if err := t.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// randomPerson draws the nine attributes with the benchmark's marginals.
func randomPerson(rng *rand.Rand) [9]float64 {
	var p [9]float64
	p[ColSalary] = uniform(rng, 20000, 150000)
	if p[ColSalary] >= 75000 {
		p[ColCommission] = 0
	} else {
		p[ColCommission] = uniform(rng, 10000, 75000)
	}
	p[ColAge] = uniform(rng, 20, 80)
	p[ColELevel] = float64(rng.Intn(5))
	p[ColCar] = float64(1 + rng.Intn(20))
	p[ColZipcode] = float64(1 + rng.Intn(9))
	// House value depends on zipcode: uniform in [0.5, 1.5] * 100000 * zip.
	p[ColHValue] = uniform(rng, 0.5, 1.5) * 100000 * p[ColZipcode]
	p[ColHYears] = float64(1 + rng.Intn(30))
	p[ColLoan] = uniform(rng, 0, 500000)
	return p
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

// groupA evaluates labelling function fn on person p, returning true for
// Group A. The predicates follow the published benchmark definitions.
func groupA(fn int, p [9]float64) bool {
	salary, commission := p[ColSalary], p[ColCommission]
	age, elevel := p[ColAge], p[ColELevel]
	zipcode := p[ColZipcode]
	hvalue, hyears, loan := p[ColHValue], p[ColHYears], p[ColLoan]
	switch fn {
	case 1:
		return age < 40 || age >= 60
	case 2:
		switch {
		case age < 40:
			return salary >= 50000 && salary <= 100000
		case age < 60:
			return salary >= 75000 && salary <= 125000
		default:
			return salary >= 25000 && salary <= 75000
		}
	case 3:
		switch {
		case age < 40:
			return elevel == 0 || elevel == 1
		case age < 60:
			return elevel >= 1 && elevel <= 3
		default:
			return elevel >= 2 && elevel <= 4
		}
	case 4:
		switch {
		case age < 40:
			if elevel <= 1 {
				return salary >= 25000 && salary <= 75000
			}
			return salary >= 50000 && salary <= 100000
		case age < 60:
			if elevel <= 1 {
				return salary >= 50000 && salary <= 100000
			}
			return salary >= 75000 && salary <= 125000
		default:
			if elevel <= 1 {
				return salary >= 25000 && salary <= 75000
			}
			return salary >= 50000 && salary <= 100000
		}
	case 5:
		switch {
		case age < 40:
			if salary >= 50000 && salary <= 100000 {
				return loan >= 100000 && loan <= 300000
			}
			return loan >= 200000 && loan <= 400000
		case age < 60:
			if salary >= 75000 && salary <= 125000 {
				return loan >= 200000 && loan <= 400000
			}
			return loan >= 300000 && loan <= 500000
		default:
			if salary >= 25000 && salary <= 75000 {
				return loan >= 100000 && loan <= 300000
			}
			return loan >= 300000 && loan <= 500000
		}
	case 6:
		total := salary + commission
		switch {
		case age < 40:
			return total >= 50000 && total <= 100000
		case age < 60:
			return total >= 75000 && total <= 125000
		default:
			return total >= 25000 && total <= 75000
		}
	case 7:
		return 0.67*(salary+commission)-0.2*loan-20000 > 0
	case 8:
		return 0.67*(salary+commission)-5000*elevel-20000 > 0
	case 9:
		return 0.67*(salary+commission)-5000*elevel-0.2*loan+10000 > 0
	case 10:
		equity := 0.0
		if hyears >= 20 {
			equity = 0.1 * hvalue * (hyears - 20)
		}
		return 0.67*(salary+commission)-5000*elevel+0.2*equity-10000 > 0
	default:
		_ = zipcode
		return false
	}
}
