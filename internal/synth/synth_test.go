package synth

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestBasketsBasicShape(t *testing.T) {
	c := TxI(10, 4, 500, 1)
	db, err := Baskets(c)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 500 {
		t.Fatalf("Len = %d", db.Len())
	}
	total := 0
	for _, tx := range db.Transactions {
		if len(tx) == 0 {
			t.Fatal("empty transaction generated")
		}
		total += len(tx)
	}
	avg := float64(total) / float64(db.Len())
	if avg < 5 || avg > 15 {
		t.Errorf("average transaction size = %v, want ~10", avg)
	}
	if db.NumItems() > c.NumItems {
		t.Errorf("NumItems = %d exceeds universe %d", db.NumItems(), c.NumItems)
	}
}

func TestBasketsDeterministic(t *testing.T) {
	a, err := Baskets(TxI(5, 2, 100, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Baskets(TxI(5, 2, 100, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Transactions {
		if !a.Transactions[i].Equal(b.Transactions[i]) {
			t.Fatalf("tx %d differs between same-seed runs", i)
		}
	}
}

func TestBasketsSeedChangesOutput(t *testing.T) {
	a, _ := Baskets(TxI(5, 2, 100, 1))
	b, _ := Baskets(TxI(5, 2, 100, 2))
	same := true
	for i := range a.Transactions {
		if !a.Transactions[i].Equal(b.Transactions[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical databases")
	}
}

func TestBasketsHasFrequentPatterns(t *testing.T) {
	// With patterns driving generation, some pair must be frequent well
	// above the independence baseline.
	db, err := Baskets(BasketConfig{
		NumTransactions: 1000, AvgTxSize: 10, AvgPatternSize: 4,
		NumPatterns: 50, NumItems: 200,
		CorruptionMean: 0.3, CorruptionSD: 0.1, CorrelationMean: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[[2]int]int)
	for _, tx := range db.Transactions {
		for i := 0; i < len(tx); i++ {
			for j := i + 1; j < len(tx); j++ {
				counts[[2]int{tx[i], tx[j]}]++
			}
		}
	}
	best := 0
	for _, n := range counts {
		if n > best {
			best = n
		}
	}
	// Independence baseline for a pair: ~(10/200)^2 * 1000 = 2.5.
	if best < 25 {
		t.Errorf("max pair support = %d, want correlated structure (>= 25)", best)
	}
}

func TestBasketsValidation(t *testing.T) {
	bad := []BasketConfig{
		{NumTransactions: 0, AvgTxSize: 1, AvgPatternSize: 1, NumPatterns: 1, NumItems: 10},
		{NumTransactions: 1, AvgTxSize: 0, AvgPatternSize: 1, NumPatterns: 1, NumItems: 10},
		{NumTransactions: 1, AvgTxSize: 1, AvgPatternSize: 0, NumPatterns: 1, NumItems: 10},
		{NumTransactions: 1, AvgTxSize: 1, AvgPatternSize: 1, NumPatterns: 0, NumItems: 10},
		{NumTransactions: 1, AvgTxSize: 1, AvgPatternSize: 1, NumPatterns: 1, NumItems: 1},
	}
	for i, c := range bad {
		if _, err := Baskets(c); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %d: error = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestSequencesBasicShape(t *testing.T) {
	c := C10T2S4I1(200, 5)
	seqs, err := Sequences(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 200 {
		t.Fatalf("customers = %d", len(seqs))
	}
	totalTx := 0
	for _, s := range seqs {
		if len(s) == 0 {
			t.Fatal("empty customer sequence")
		}
		totalTx += len(s)
		for _, e := range s {
			if len(e) == 0 {
				t.Fatal("empty transaction in sequence")
			}
		}
	}
	avg := float64(totalTx) / float64(len(seqs))
	if avg < 6 || avg > 14 {
		t.Errorf("avg tx/customer = %v, want ~10", avg)
	}
}

func TestSequencesDeterministic(t *testing.T) {
	a, err := Sequences(C10T2S4I1(50, 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sequences(C10T2S4I1(50, 9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("customer %d lengths differ", i)
		}
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				t.Fatalf("customer %d element %d differs", i, j)
			}
		}
	}
}

func TestSequencesValidation(t *testing.T) {
	c := C10T2S4I1(10, 1)
	c.NumCustomers = 0
	if _, err := Sequences(c); !errors.Is(err, ErrBadConfig) {
		t.Errorf("error = %v", err)
	}
	c = C10T2S4I1(10, 1)
	c.NumItems = 1
	if _, err := Sequences(c); !errors.Is(err, ErrBadConfig) {
		t.Errorf("error = %v", err)
	}
}

func TestSequenceClone(t *testing.T) {
	seqs, err := Sequences(C10T2S4I1(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	cp := seqs[0].Clone()
	if len(cp) != len(seqs[0]) {
		t.Fatal("clone length")
	}
	if len(cp[0]) > 0 {
		cp[0][0] = -99
		if seqs[0][0][0] == -99 {
			t.Error("Clone shares storage")
		}
	}
}

func TestClassifyShapeAndDeterminism(t *testing.T) {
	for fn := 1; fn <= NumClassifyFunctions; fn++ {
		tbl, err := Classify(ClassifyConfig{NumRows: 500, Function: fn, Seed: 42})
		if err != nil {
			t.Fatalf("F%d: %v", fn, err)
		}
		if tbl.NumRows() != 500 {
			t.Fatalf("F%d rows = %d", fn, tbl.NumRows())
		}
		if tbl.NumClasses() != 2 {
			t.Fatalf("F%d classes = %d", fn, tbl.NumClasses())
		}
		dist, err := tbl.ClassDistribution()
		if err != nil {
			t.Fatal(err)
		}
		// Neither class should be empty for any function at n=500.
		if dist[0] == 0 || dist[1] == 0 {
			t.Errorf("F%d degenerate distribution %v", fn, dist)
		}
	}
	a, _ := Classify(ClassifyConfig{NumRows: 100, Function: 3, Seed: 1})
	b, _ := Classify(ClassifyConfig{NumRows: 100, Function: 3, Seed: 1})
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatal("same seed differs")
			}
		}
	}
}

func TestClassifyLabelsMatchPredicate(t *testing.T) {
	// With zero noise, relabelling rows with groupA must reproduce the
	// stored class exactly.
	tbl, err := Classify(ClassifyConfig{NumRows: 300, Function: 7, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tbl.Rows {
		var p [9]float64
		copy(p[:], row[:9])
		want := 1.0
		if groupA(7, p) {
			want = 0.0
		}
		if row[colClass] != want {
			t.Fatalf("row %d label mismatch", i)
		}
	}
}

func TestClassifyNoiseFlipsSomeLabels(t *testing.T) {
	noisy, _ := Classify(ClassifyConfig{NumRows: 1000, Function: 1, Noise: 0.2, Seed: 5})
	flips := 0
	for _, row := range noisy.Rows {
		var p [9]float64
		copy(p[:], row[:9])
		want := 1.0
		if groupA(1, p) {
			want = 0.0
		}
		if row[colClass] != want {
			flips++
		}
	}
	if flips < 100 || flips > 300 {
		t.Errorf("flips = %d, want ~200", flips)
	}
}

func TestClassifyAttributeRanges(t *testing.T) {
	tbl, err := Classify(ClassifyConfig{NumRows: 2000, Function: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tbl.Rows {
		if row[ColSalary] < 20000 || row[ColSalary] > 150000 {
			t.Fatalf("row %d salary %v", i, row[ColSalary])
		}
		if row[ColSalary] >= 75000 && row[ColCommission] != 0 {
			t.Fatalf("row %d: commission must be 0 for salary >= 75000", i)
		}
		if row[ColAge] < 20 || row[ColAge] > 80 {
			t.Fatalf("row %d age %v", i, row[ColAge])
		}
		if row[ColELevel] < 0 || row[ColELevel] > 4 {
			t.Fatalf("row %d elevel %v", i, row[ColELevel])
		}
		if row[ColZipcode] < 1 || row[ColZipcode] > 9 {
			t.Fatalf("row %d zipcode %v", i, row[ColZipcode])
		}
	}
}

func TestClassifyValidation(t *testing.T) {
	cases := []ClassifyConfig{
		{NumRows: 0, Function: 1},
		{NumRows: 10, Function: 0},
		{NumRows: 10, Function: 11},
		{NumRows: 10, Function: 1, Noise: 1.5},
	}
	for i, c := range cases {
		if _, err := Classify(c); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: error = %v", i, err)
		}
	}
}

func TestClassifyClassAttribute(t *testing.T) {
	tbl, _ := Classify(ClassifyConfig{NumRows: 10, Function: 1, Seed: 1})
	a, err := tbl.ClassAttribute()
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != dataset.Categorical || len(a.Values) != 2 {
		t.Errorf("class attribute = %+v", a)
	}
}

func TestGaussianMixture(t *testing.T) {
	p, err := GaussianMixture(GaussianConfig{
		NumPoints: 300, NumCluster: 3, Dims: 2, Spread: 0.5, Separation: 50, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.X) != 300 || len(p.Labels) != 300 {
		t.Fatal("shape wrong")
	}
	counts := make([]int, 3)
	for _, l := range p.Labels {
		counts[l]++
	}
	for k, n := range counts {
		if n != 100 {
			t.Errorf("cluster %d count = %d, want 100", k, n)
		}
	}
	// With separation >> spread, within-cluster distances are far smaller
	// than between-cluster centroid distances on average.
	if !clustersSeparated(p, 3) {
		t.Error("clusters not separated despite high separation config")
	}
}

func clustersSeparated(p *Points, k int) bool {
	cent := make([][]float64, k)
	counts := make([]int, k)
	dims := len(p.X[0])
	for i := range cent {
		cent[i] = make([]float64, dims)
	}
	for i, x := range p.X {
		l := p.Labels[i]
		for d := range x {
			cent[l][d] += x[d]
		}
		counts[l]++
	}
	for i := range cent {
		for d := range cent[i] {
			cent[i][d] /= float64(counts[i])
		}
	}
	withinMax := 0.0
	for i, x := range p.X {
		d := euclid(x, cent[p.Labels[i]])
		if d > withinMax {
			withinMax = d
		}
	}
	betweenMin := math.Inf(1)
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			if d := euclid(cent[a], cent[b]); d < betweenMin {
				betweenMin = d
			}
		}
	}
	return betweenMin > withinMax
}

func euclid(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestGaussianMixtureValidation(t *testing.T) {
	if _, err := GaussianMixture(GaussianConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("error = %v", err)
	}
	if _, err := GaussianMixture(GaussianConfig{NumPoints: 1, NumCluster: 1, Dims: 1, Spread: 0, Separation: 1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero-spread error = %v", err)
	}
}

func TestGaussianGrid(t *testing.T) {
	p, err := GaussianGrid(GridConfig{NumPoints: 400, GridSide: 2, CentreDist: 20, Spread: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.X) != 400 {
		t.Fatal("shape")
	}
	for _, x := range p.X {
		if len(x) != 2 {
			t.Fatal("grid points must be 2-D")
		}
	}
	if !clustersSeparated(p, 4) {
		t.Error("grid clusters not separated")
	}
	if _, err := GaussianGrid(GridConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("validation error = %v", err)
	}
}

func TestShapes(t *testing.T) {
	for _, kind := range []ShapeKind{TwoMoons, Rings} {
		p, err := Shapes(ShapeConfig{Kind: kind, NumPoints: 200, Jitter: 0.05, NoiseFrac: 0.1, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(p.X) != 200 {
			t.Fatalf("kind %d: points = %d", kind, len(p.X))
		}
		noise := 0
		labels := map[int]int{}
		for _, l := range p.Labels {
			if l == -1 {
				noise++
			} else {
				labels[l]++
			}
		}
		if noise != 20 {
			t.Errorf("kind %d: noise = %d, want 20", kind, noise)
		}
		if len(labels) != 2 {
			t.Errorf("kind %d: cluster labels = %v", kind, labels)
		}
	}
}

func TestShapesValidation(t *testing.T) {
	if _, err := Shapes(ShapeConfig{NumPoints: 0}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("error = %v", err)
	}
	if _, err := Shapes(ShapeConfig{NumPoints: 10, NoiseFrac: 1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("noise=1 error = %v", err)
	}
	if _, err := Shapes(ShapeConfig{Kind: ShapeKind(99), NumPoints: 10}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown shape error = %v", err)
	}
}

func TestRingsRadiiDistinct(t *testing.T) {
	p, err := Shapes(ShapeConfig{Kind: Rings, NumPoints: 400, Jitter: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range p.X {
		r := math.Hypot(x[0], x[1])
		switch p.Labels[i] {
		case 0:
			if math.Abs(r-1) > 0.3 {
				t.Fatalf("inner ring point radius %v", r)
			}
		case 1:
			if math.Abs(r-2.5) > 0.3 {
				t.Fatalf("outer ring point radius %v", r)
			}
		}
	}
}
