// Package ensemble implements the two classic committee methods that
// closed out the survey era: bootstrap aggregating (Breiman, 1994) and
// AdaBoost.M1 (Freund & Schapire, 1995), both over the library's decision
// trees. AdaBoost uses the standard resampling formulation: each round
// draws a bootstrap sample proportional to the example weights, so the
// base learner needs no weighted-training support. Both cost rounds × one
// base-tree training; bagging's rounds are independent, boosting's are
// sequential.
package ensemble

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/tree"
)

// Errors returned by the trainers.
var (
	ErrNoRows  = errors.New("ensemble: empty training table")
	ErrNoClass = errors.New("ensemble: table has no categorical class attribute")
	ErrConfig  = errors.New("ensemble: invalid configuration")
)

// Bagging trains Rounds trees on bootstrap replicates and predicts by
// majority vote.
type Bagging struct {
	Rounds int // zero means 10
	Tree   tree.Config
	Seed   int64
}

// BaggedModel is a trained bagging committee.
type BaggedModel struct {
	trees    []*tree.Tree
	nClasses int
}

// Train fits the committee.
func (b *Bagging) Train(t *dataset.Table) (*BaggedModel, error) {
	if t == nil || t.NumRows() == 0 {
		return nil, ErrNoRows
	}
	if t.NumClasses() < 1 {
		return nil, ErrNoClass
	}
	rounds := b.Rounds
	if rounds <= 0 {
		rounds = 10
	}
	rng := rand.New(rand.NewSource(b.Seed))
	m := &BaggedModel{nClasses: t.NumClasses()}
	n := t.NumRows()
	for r := 0; r < rounds; r++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		tr, err := tree.Build(t.Subset(idx), b.Tree)
		if err != nil {
			return nil, err
		}
		m.trees = append(m.trees, tr)
	}
	return m, nil
}

// Predict returns the committee's majority vote.
func (m *BaggedModel) Predict(row []float64) int {
	votes := make([]int, m.nClasses)
	for _, tr := range m.trees {
		c := tr.Predict(row)
		if c >= 0 && c < len(votes) {
			votes[c]++
		}
	}
	best := 0
	for c, v := range votes {
		if v > votes[best] {
			best = c
		}
	}
	return best
}

// Size returns the number of committee members.
func (m *BaggedModel) Size() int { return len(m.trees) }

// AdaBoost is AdaBoost.M1 over depth-limited trees.
type AdaBoost struct {
	Rounds int // zero means 20
	// MaxDepth limits the base trees (zero means 3 — shallow learners).
	MaxDepth int
	Seed     int64
}

// BoostedModel is a trained boosting committee: trees with log-odds
// weights.
type BoostedModel struct {
	trees    []*tree.Tree
	alphas   []float64
	nClasses int
}

// Train fits the committee.
func (a *AdaBoost) Train(t *dataset.Table) (*BoostedModel, error) {
	if t == nil || t.NumRows() == 0 {
		return nil, ErrNoRows
	}
	if t.NumClasses() < 1 {
		return nil, ErrNoClass
	}
	rounds := a.Rounds
	if rounds <= 0 {
		rounds = 20
	}
	depth := a.MaxDepth
	if depth <= 0 {
		depth = 3
	}
	rng := rand.New(rand.NewSource(a.Seed))
	n := t.NumRows()
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	m := &BoostedModel{nClasses: t.NumClasses()}
	for r := 0; r < rounds; r++ {
		idx := weightedBootstrap(rng, w)
		tr, err := tree.Build(t.Subset(idx), tree.Config{Criterion: tree.GainRatio, MaxDepth: depth, MinLeaf: 2})
		if err != nil {
			return nil, err
		}
		// Weighted error on the full training set.
		eps := 0.0
		wrong := make([]bool, n)
		for i, row := range t.Rows {
			if tr.Predict(row) != t.Class(i) {
				eps += w[i]
				wrong[i] = true
			}
		}
		if eps >= 0.5 {
			// Worse than chance on the weighted sample: reset weights and
			// retry with a fresh bootstrap (the M1 restart rule).
			for i := range w {
				w[i] = 1 / float64(n)
			}
			continue
		}
		if eps == 0 {
			// Perfect learner: give it a large, finite say and stop.
			m.trees = append(m.trees, tr)
			m.alphas = append(m.alphas, 10)
			break
		}
		beta := eps / (1 - eps)
		alpha := math.Log(1 / beta)
		m.trees = append(m.trees, tr)
		m.alphas = append(m.alphas, alpha)
		// Downweight correct examples, renormalise.
		total := 0.0
		for i := range w {
			if !wrong[i] {
				w[i] *= beta
			}
			total += w[i]
		}
		for i := range w {
			w[i] /= total
		}
	}
	if len(m.trees) == 0 {
		return nil, errors.New("ensemble: boosting found no usable weak learner")
	}
	return m, nil
}

func weightedBootstrap(rng *rand.Rand, w []float64) []int {
	idx := make([]int, len(w))
	for i := range idx {
		pick := stats.WeightedChoice(rng, w)
		if pick < 0 {
			pick = rng.Intn(len(w))
		}
		idx[i] = pick
	}
	return idx
}

// Predict returns the weighted vote.
func (m *BoostedModel) Predict(row []float64) int {
	votes := make([]float64, m.nClasses)
	for i, tr := range m.trees {
		c := tr.Predict(row)
		if c >= 0 && c < len(votes) {
			votes[c] += m.alphas[i]
		}
	}
	best := 0
	for c, v := range votes {
		if v > votes[best] {
			best = c
		}
	}
	return best
}

// Size returns the number of committee members.
func (m *BoostedModel) Size() int { return len(m.trees) }
