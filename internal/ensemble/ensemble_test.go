package ensemble

import (
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
	"repro/internal/tree"
)

func noisyTables(t *testing.T, fn int) (train, test *dataset.Table) {
	t.Helper()
	var err error
	train, err = synth.Classify(synth.ClassifyConfig{NumRows: 1200, Function: fn, Noise: 0.15, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	test, err = synth.Classify(synth.ClassifyConfig{NumRows: 800, Function: fn, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func accuracyOf(clf interface{ Predict([]float64) int }, tbl *dataset.Table) float64 {
	correct := 0
	for i, row := range tbl.Rows {
		if clf.Predict(row) == tbl.Class(i) {
			correct++
		}
	}
	return float64(correct) / float64(tbl.NumRows())
}

func TestBaggingBeatsSingleTreeOnNoise(t *testing.T) {
	train, test := noisyTables(t, 5)
	single, err := tree.Build(train, tree.Config{Criterion: tree.GainRatio})
	if err != nil {
		t.Fatal(err)
	}
	bag, err := (&Bagging{Rounds: 15, Tree: tree.Config{Criterion: tree.GainRatio}, Seed: 1}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if bag.Size() != 15 {
		t.Errorf("committee size = %d", bag.Size())
	}
	singleAcc, bagAcc := accuracyOf(single, test), accuracyOf(bag, test)
	if bagAcc < singleAcc-0.01 {
		t.Errorf("bagging %.3f worse than single tree %.3f", bagAcc, singleAcc)
	}
}

func TestAdaBoostBeatsStump(t *testing.T) {
	// F7's class boundary is a diagonal hyperplane: individual
	// axis-parallel stumps approximate it poorly, and boosting's weighted
	// committee builds the diagonal out of them — the classic
	// Freund-Schapire demonstration. (On heavily label-noisy data
	// AdaBoost famously does NOT help; see the bagging test for that
	// regime.)
	train, err := synth.Classify(synth.ClassifyConfig{NumRows: 1200, Function: 7, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	test, err := synth.Classify(synth.ClassifyConfig{NumRows: 800, Function: 7, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	stump, err := tree.Build(train, tree.Config{Criterion: tree.GainRatio, MaxDepth: 2, MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	boost, err := (&AdaBoost{Rounds: 30, MaxDepth: 2, Seed: 2}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if boost.Size() < 2 {
		t.Fatalf("committee size = %d", boost.Size())
	}
	stumpAcc, boostAcc := accuracyOf(stump, test), accuracyOf(boost, test)
	if boostAcc <= stumpAcc+0.03 {
		t.Errorf("boosting %.3f not clearly better than its weak learner %.3f", boostAcc, stumpAcc)
	}
}

func TestEnsembleValidation(t *testing.T) {
	if _, err := (&Bagging{}).Train(nil); !errors.Is(err, ErrNoRows) {
		t.Errorf("bagging nil error = %v", err)
	}
	if _, err := (&AdaBoost{}).Train(nil); !errors.Is(err, ErrNoRows) {
		t.Errorf("boosting nil error = %v", err)
	}
	noClass := dataset.New(dataset.NewNumericAttribute("x"))
	if err := noClass.AppendRow([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := (&Bagging{}).Train(noClass); !errors.Is(err, ErrNoClass) {
		t.Errorf("bagging no-class error = %v", err)
	}
	if _, err := (&AdaBoost{}).Train(noClass); !errors.Is(err, ErrNoClass) {
		t.Errorf("boosting no-class error = %v", err)
	}
}

func TestEnsemblesDeterministic(t *testing.T) {
	train, test := noisyTables(t, 3)
	a, err := (&Bagging{Rounds: 5, Seed: 9}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Bagging{Rounds: 5, Seed: 9}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range test.Rows[:100] {
		if a.Predict(row) != b.Predict(row) {
			t.Fatal("same-seed bagging differs")
		}
	}
	c, err := (&AdaBoost{Rounds: 5, Seed: 9}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	d, err := (&AdaBoost{Rounds: 5, Seed: 9}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range test.Rows[:100] {
		if c.Predict(row) != d.Predict(row) {
			t.Fatal("same-seed boosting differs")
		}
	}
}

func TestAdaBoostPerfectLearnerStops(t *testing.T) {
	// Separable data: the first unlimited-depth... depth-3 tree on F1
	// (age-only) is already perfect, so boosting should stop early.
	train, err := synth.Classify(synth.ClassifyConfig{NumRows: 500, Function: 1, Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	boost, err := (&AdaBoost{Rounds: 30, MaxDepth: 5, Seed: 3}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if boost.Size() > 5 {
		t.Errorf("perfect learner should stop boosting early; size = %d", boost.Size())
	}
	if acc := accuracyOf(boost, train); acc < 0.99 {
		t.Errorf("training accuracy = %v", acc)
	}
}
