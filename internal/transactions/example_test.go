package transactions_test

import (
	"fmt"

	"repro/internal/transactions"
)

// ExampleDB builds a small horizontal database and shows the invariants
// the miners rely on: transactions normalise to sorted sets, support is a
// containment count, and Shards hands out contiguous zero-copy views with
// global tid bases for the count-distribution engine.
func ExampleDB() {
	db := transactions.NewDB()
	if err := db.Add(3, 1, 2, 3); err != nil { // duplicates and order normalise away
		panic(err)
	}
	if err := db.Add(2, 4); err != nil {
		panic(err)
	}
	fmt.Println("transactions:", db.Len(), "item universe:", db.NumItems())
	fmt.Println("first:", db.Transactions[0])
	fmt.Println("support of {2}:", db.Support(transactions.NewItemset(2)))
	for _, sh := range db.Shards(2) {
		fmt.Println("shard base", sh.Base, "size", len(sh.Transactions))
	}
	// Output:
	// transactions: 2 item universe: 5
	// first: {1, 2, 3}
	// support of {2}: 2
	// shard base 0 size 1
	// shard base 1 size 1
}

// ExampleShardedDB shows the updatable store behind the incremental
// mining backend: appends fill the tail shard, deletes compact within the
// owning shard, and every mutation bumps exactly one shard version — the
// signal caches use to re-count only dirty shards.
func ExampleShardedDB() {
	store := transactions.NewShardedDB(64) // capacity rounds to a word multiple
	for i := 0; i < 70; i++ {
		if err := store.Append(1, 2); err != nil {
			panic(err)
		}
	}
	fmt.Println("transactions:", store.Len(), "shards:", store.NumShards(), "cap:", store.ShardCap())
	fmt.Println("versions:", store.Version(0), store.Version(1))

	if _, err := store.DeleteAt(0); err != nil { // dirties only shard 0
		panic(err)
	}
	fmt.Println("after delete:", store.Len(), "versions:", store.Version(0), store.Version(1))
	fmt.Println("snapshot:", store.Snapshot().Len())
	// Output:
	// transactions: 70 shards: 2 cap: 64
	// versions: 64 6
	// after delete: 69 versions: 65 6
	// snapshot: 69
}
