// Package transactions provides the market-basket substrate for the
// association-rule and sequential-pattern miners: itemsets, transaction
// databases in horizontal and vertical layouts, and plain-text I/O.
//
// Items are dense non-negative integer ids. An Itemset is always kept
// sorted ascending with no duplicates, which makes subset tests,
// lexicographic comparison, and the Apriori candidate join O(k).
//
// Storage comes in three layouts, each the substrate of one mining mode:
// DB is the flat horizontal database (one itemset per transaction) whose
// Shards method hands out the zero-copy contiguous views the
// count-distribution engine scans in parallel; Vertical/VerticalBits are
// the inverted tid-list and bitset layouts Eclat intersects; ShardedDB is
// the updatable store of the incremental backend — fixed-capacity,
// version-stamped shards where appends fill the tail, deletes compact in
// place, and a mutation dirties exactly one shard. Shard capacities are
// multiples of 64 so per-shard bitsets concatenate word-aligned
// (ConcatBitsets).
package transactions

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Itemset is a sorted set of item ids.
type Itemset []int

// NewItemset returns a sorted, deduplicated itemset built from items.
func NewItemset(items ...int) Itemset {
	cp := append([]int(nil), items...)
	sort.Ints(cp)
	out := cp[:0]
	for i, v := range cp {
		if i == 0 || v != cp[i-1] {
			out = append(out, v)
		}
	}
	return Itemset(out)
}

// Contains reports whether the itemset contains item.
func (s Itemset) Contains(item int) bool {
	i := sort.SearchInts(s, item)
	return i < len(s) && s[i] == item
}

// ContainsAll reports whether every item of sub is in s (subset test).
// Both sets must be sorted, which NewItemset guarantees.
func (s Itemset) ContainsAll(sub Itemset) bool {
	i := 0
	for _, want := range sub {
		for i < len(s) && s[i] < want {
			i++
		}
		if i >= len(s) || s[i] != want {
			return false
		}
		i++
	}
	return true
}

// Equal reports whether two itemsets contain the same items.
func (s Itemset) Equal(o Itemset) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Compare orders itemsets lexicographically, shorter-first on ties.
func (s Itemset) Compare(o Itemset) int {
	n := len(s)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if s[i] != o[i] {
			if s[i] < o[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(s) < len(o):
		return -1
	case len(s) > len(o):
		return 1
	default:
		return 0
	}
}

// Union returns the sorted union of s and o.
func (s Itemset) Union(o Itemset) Itemset {
	out := make(Itemset, 0, len(s)+len(o))
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] < o[j]:
			out = append(out, s[i])
			i++
		case s[i] > o[j]:
			out = append(out, o[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, o[j:]...)
	return out
}

// Without returns a copy of s with item removed (no-op if absent).
func (s Itemset) Without(item int) Itemset {
	out := make(Itemset, 0, len(s))
	for _, v := range s {
		if v != item {
			out = append(out, v)
		}
	}
	return out
}

// Key returns a canonical string key for map indexing.
func (s Itemset) Key() string {
	var sb strings.Builder
	for i, v := range s {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(v))
	}
	return sb.String()
}

// String renders the itemset as "{a, b, c}".
func (s Itemset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, v := range s {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(strconv.Itoa(v))
	}
	sb.WriteByte('}')
	return sb.String()
}

// Clone returns an independent copy of the itemset.
func (s Itemset) Clone() Itemset {
	return append(Itemset(nil), s...)
}

// Errors returned by this package.
var (
	ErrNegativeItem = errors.New("transactions: negative item id")
	ErrEmptyDB      = errors.New("transactions: empty database")
)

// DB is a horizontal transaction database: one itemset per transaction.
type DB struct {
	Transactions []Itemset
	numItems     int // 1 + max item id seen, maintained by Add
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{} }

// Add appends a transaction, normalising it to a sorted set.
func (db *DB) Add(items ...int) error {
	for _, it := range items {
		if it < 0 {
			return fmt.Errorf("%w: %d", ErrNegativeItem, it)
		}
	}
	s := NewItemset(items...)
	if len(s) > 0 && s[len(s)-1]+1 > db.numItems {
		db.numItems = s[len(s)-1] + 1
	}
	db.Transactions = append(db.Transactions, s)
	return nil
}

// Len returns the number of transactions.
func (db *DB) Len() int { return len(db.Transactions) }

// NumItems returns 1 + the largest item id in the database.
func (db *DB) NumItems() int { return db.numItems }

// AbsoluteSupport converts a relative support in (0, 1] to the minimum
// transaction count, rounding up and never below 1.
func (db *DB) AbsoluteSupport(rel float64) int {
	return absoluteSupport(rel, len(db.Transactions))
}

// absoluteSupport is the one shared rounding rule for relative→absolute
// support. DB and ShardedDB must agree exactly here: the incremental
// backend's byte-identity guarantee compares thresholds computed through
// both paths.
func absoluteSupport(rel float64, numTx int) int {
	n := int(rel*float64(numTx) + 0.999999999)
	if n < 1 {
		n = 1
	}
	return n
}

// Support counts the transactions containing every item of s.
func (db *DB) Support(s Itemset) int {
	n := 0
	for _, t := range db.Transactions {
		if t.ContainsAll(s) {
			n++
		}
	}
	return n
}

// Partition splits the database into k contiguous chunks of near-equal
// size, for the Partition algorithm. Fewer than k chunks are returned when
// there are fewer than k transactions.
func (db *DB) Partition(k int) []*DB {
	if k < 1 {
		k = 1
	}
	if k > len(db.Transactions) {
		k = len(db.Transactions)
	}
	if k == 0 {
		return nil
	}
	out := make([]*DB, 0, k)
	per := len(db.Transactions) / k
	rem := len(db.Transactions) % k
	start := 0
	for i := 0; i < k; i++ {
		size := per
		if i < rem {
			size++
		}
		part := &DB{Transactions: db.Transactions[start : start+size], numItems: db.numItems}
		out = append(out, part)
		start += size
	}
	return out
}

// Shard is a zero-copy horizontal view of a contiguous run of the
// database's transactions, for count-distribution parallelism: each worker
// scans one shard into private counters which are merged after the pass.
// Base is the global transaction id of Transactions[0], so workers can
// reconstruct global tids (Base+i) for structures that deduplicate by tid.
type Shard struct {
	Transactions []Itemset
	Base         int
}

// Shards splits the database into at most n contiguous zero-copy views of
// near-equal size. Fewer than n shards are returned when there are fewer
// than n transactions; n < 1 is treated as 1. The views alias the
// database's backing slice — callers must not mutate transactions through
// them.
func (db *DB) Shards(n int) []Shard {
	if n < 1 {
		n = 1
	}
	if n > len(db.Transactions) {
		n = len(db.Transactions)
	}
	if n == 0 {
		return nil
	}
	out := make([]Shard, 0, n)
	per := len(db.Transactions) / n
	rem := len(db.Transactions) % n
	start := 0
	for i := 0; i < n; i++ {
		size := per
		if i < rem {
			size++
		}
		out = append(out, Shard{Transactions: db.Transactions[start : start+size], Base: start})
		start += size
	}
	return out
}

// Vertical is the inverted (tid-list) layout: for each item, the sorted
// list of transaction ids containing it.
type Vertical struct {
	TIDLists map[int][]int
	NumTx    int
}

// ToVertical converts the database to the vertical layout.
func (db *DB) ToVertical() *Vertical {
	v := &Vertical{TIDLists: make(map[int][]int), NumTx: len(db.Transactions)}
	for tid, t := range db.Transactions {
		for _, item := range t {
			v.TIDLists[item] = append(v.TIDLists[item], tid)
		}
	}
	return v
}

// IntersectSorted returns the intersection of two ascending id lists.
func IntersectSorted(a, b []int) []int {
	out := make([]int, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ReadBasket parses whitespace-separated item ids, one transaction per
// line. Blank lines and lines starting with '#' are skipped.
func ReadBasket(r io.Reader) (*DB, error) {
	db := NewDB()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		items := make([]int, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("transactions: line %d: %w", lineNo, err)
			}
			items = append(items, v)
		}
		if err := db.Add(items...); err != nil {
			return nil, fmt.Errorf("transactions: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("transactions: scanning: %w", err)
	}
	return db, nil
}

// WriteBasket writes the database in the ReadBasket format.
func (db *DB) WriteBasket(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range db.Transactions {
		for i, item := range t {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(item)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
