package transactions

import "math/bits"

// Bitset is a fixed-length bit vector over transaction ids — the dense
// alternative to a sorted tid-list for the vertical layout. Support is a
// popcount over the words and candidate tid-sets are in-place word-wise
// ANDs, so intersection cost is NumTx/64 regardless of how many
// transactions contain the itemset. That beats tid-list merging once the
// lists are dense; Eclat picks between the two layouts by density.
type Bitset struct {
	words []uint64
	n     int // number of addressable bits
}

// NewBitset returns an all-zero bitset addressing bits [0, n).
func NewBitset(n int) *Bitset {
	if n < 0 {
		n = 0
	}
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// BitsetFromTIDs builds a bitset over [0, n) with the given tids set.
// Out-of-range tids are ignored.
func BitsetFromTIDs(tids []int, n int) *Bitset {
	b := NewBitset(n)
	for _, tid := range tids {
		b.Set(tid)
	}
	return b
}

// Len returns the number of addressable bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i; out-of-range ids are ignored.
func (b *Bitset) Set(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Has reports whether bit i is set.
func (b *Bitset) Has(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// OnesCount returns the number of set bits — the support when bits are
// transaction ids.
func (b *Bitset) OnesCount() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And intersects b with o in place and returns b's new popcount. The two
// bitsets must have the same length.
func (b *Bitset) And(o *Bitset) int {
	c := 0
	for i, w := range o.words {
		b.words[i] &= w
		c += bits.OnesCount64(b.words[i])
	}
	return c
}

// AndCount returns the popcount of the intersection of a and b without
// materialising it — the support test that decides whether a candidate is
// worth allocating at all.
func AndCount(a, b *Bitset) int {
	c := 0
	for i, w := range a.words {
		c += bits.OnesCount64(w & b.words[i])
	}
	return c
}

// AndBitset returns a new bitset holding the intersection of a and b.
func AndBitset(a, b *Bitset) *Bitset {
	out := &Bitset{words: make([]uint64, len(a.words)), n: a.n}
	for i, w := range a.words {
		out.words[i] = w & b.words[i]
	}
	return out
}

// Clone returns an independent copy of the bitset.
func (b *Bitset) Clone() *Bitset {
	return &Bitset{words: append([]uint64(nil), b.words...), n: b.n}
}

// AppendTIDs appends the ids of all set bits to dst in ascending order and
// returns it — the bridge back to the tid-list layout.
func (b *Bitset) AppendTIDs(dst []int) []int {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// ConcatBitsets concatenates parts into one bitset whose bit space is the
// concatenation of the parts' bit spaces, in order. When every part except
// the last addresses a multiple of 64 bits — which ShardedDB guarantees for
// full shards by rounding the shard capacity to a word multiple — the
// concatenation is pure word copying; otherwise the tail parts are shifted
// bit by bit. This is the bridge from per-shard vertical bitset views to a
// database-wide one.
func ConcatBitsets(parts ...*Bitset) *Bitset {
	n := 0
	for _, p := range parts {
		n += p.n
	}
	out := NewBitset(n)
	base := 0
	for _, p := range parts {
		if base&63 == 0 {
			copy(out.words[base>>6:], p.words)
		} else {
			for wi, w := range p.words {
				for ; w != 0; w &= w - 1 {
					out.Set(base + (wi << 6) + bits.TrailingZeros64(w))
				}
			}
		}
		base += p.n
	}
	// Clear any bits the word copies wrote past the final length (a part's
	// last word may address more bits than the part's length).
	if top := n & 63; top != 0 && len(out.words) > 0 {
		out.words[len(out.words)-1] &= (1 << uint(top)) - 1
	}
	return out
}

// VerticalBits is the bitset form of the vertical layout: one bitset of
// length NumTx per item.
type VerticalBits struct {
	Bits  map[int]*Bitset
	NumTx int
}

// ToVerticalBitset converts the database to the bitset vertical layout.
func (db *DB) ToVerticalBitset() *VerticalBits {
	v := &VerticalBits{Bits: make(map[int]*Bitset), NumTx: len(db.Transactions)}
	for tid, t := range db.Transactions {
		for _, item := range t {
			b := v.Bits[item]
			if b == nil {
				b = NewBitset(v.NumTx)
				v.Bits[item] = b
			}
			b.Set(tid)
		}
	}
	return v
}
