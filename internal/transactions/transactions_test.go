package transactions

import (
	"errors"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewItemsetSortsAndDedups(t *testing.T) {
	s := NewItemset(3, 1, 2, 3, 1)
	want := Itemset{1, 2, 3}
	if !s.Equal(want) {
		t.Errorf("NewItemset = %v, want %v", s, want)
	}
}

func TestItemsetContains(t *testing.T) {
	s := NewItemset(1, 3, 5)
	for _, item := range []int{1, 3, 5} {
		if !s.Contains(item) {
			t.Errorf("Contains(%d) = false", item)
		}
	}
	for _, item := range []int{0, 2, 4, 6} {
		if s.Contains(item) {
			t.Errorf("Contains(%d) = true", item)
		}
	}
}

func TestContainsAll(t *testing.T) {
	s := NewItemset(1, 2, 3, 5, 8)
	tests := []struct {
		sub  Itemset
		want bool
	}{
		{NewItemset(), true},
		{NewItemset(1), true},
		{NewItemset(2, 5), true},
		{NewItemset(1, 2, 3, 5, 8), true},
		{NewItemset(4), false},
		{NewItemset(1, 4), false},
		{NewItemset(8, 9), false},
	}
	for _, tt := range tests {
		if got := s.ContainsAll(tt.sub); got != tt.want {
			t.Errorf("ContainsAll(%v) = %v, want %v", tt.sub, got, tt.want)
		}
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Itemset
		want int
	}{
		{NewItemset(1, 2), NewItemset(1, 2), 0},
		{NewItemset(1, 2), NewItemset(1, 3), -1},
		{NewItemset(1, 3), NewItemset(1, 2), 1},
		{NewItemset(1), NewItemset(1, 2), -1},
		{NewItemset(1, 2), NewItemset(1), 1},
		{NewItemset(), NewItemset(), 0},
	}
	for _, tt := range tests {
		if got := tt.a.Compare(tt.b); got != tt.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestUnionWithout(t *testing.T) {
	a := NewItemset(1, 3, 5)
	b := NewItemset(2, 3, 6)
	if got := a.Union(b); !got.Equal(NewItemset(1, 2, 3, 5, 6)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Without(3); !got.Equal(NewItemset(1, 5)) {
		t.Errorf("Without = %v", got)
	}
	if got := a.Without(99); !got.Equal(a) {
		t.Errorf("Without absent = %v", got)
	}
}

func TestKeyString(t *testing.T) {
	s := NewItemset(5, 1, 3)
	if got := s.Key(); got != "1,3,5" {
		t.Errorf("Key = %q", got)
	}
	if got := s.String(); got != "{1, 3, 5}" {
		t.Errorf("String = %q", got)
	}
	if got := NewItemset().String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewItemset(1, 2)
	b := a.Clone()
	b[0] = 9
	if a[0] == 9 {
		t.Error("Clone shares storage")
	}
}

func TestDBAddAndSupport(t *testing.T) {
	db := NewDB()
	mustAdd(t, db, 1, 2, 3)
	mustAdd(t, db, 2, 3)
	mustAdd(t, db, 1, 3)
	mustAdd(t, db, 3)
	if db.Len() != 4 {
		t.Fatalf("Len = %d", db.Len())
	}
	if db.NumItems() != 4 {
		t.Errorf("NumItems = %d, want 4", db.NumItems())
	}
	tests := []struct {
		set  Itemset
		want int
	}{
		{NewItemset(3), 4},
		{NewItemset(1), 2},
		{NewItemset(2, 3), 2},
		{NewItemset(1, 2, 3), 1},
		{NewItemset(9), 0},
		{NewItemset(), 4},
	}
	for _, tt := range tests {
		if got := db.Support(tt.set); got != tt.want {
			t.Errorf("Support(%v) = %d, want %d", tt.set, got, tt.want)
		}
	}
}

func mustAdd(t *testing.T, db *DB, items ...int) {
	t.Helper()
	if err := db.Add(items...); err != nil {
		t.Fatal(err)
	}
}

func TestDBAddNegative(t *testing.T) {
	db := NewDB()
	if err := db.Add(1, -2); !errors.Is(err, ErrNegativeItem) {
		t.Errorf("negative item error = %v", err)
	}
}

func TestAbsoluteSupport(t *testing.T) {
	db := NewDB()
	for i := 0; i < 100; i++ {
		mustAdd(t, db, i)
	}
	tests := []struct {
		rel  float64
		want int
	}{
		{0.01, 1}, {0.5, 50}, {0.005, 1}, {1, 100}, {0.015, 2},
	}
	for _, tt := range tests {
		if got := db.AbsoluteSupport(tt.rel); got != tt.want {
			t.Errorf("AbsoluteSupport(%v) = %d, want %d", tt.rel, got, tt.want)
		}
	}
}

func TestPartition(t *testing.T) {
	db := NewDB()
	for i := 0; i < 10; i++ {
		mustAdd(t, db, i)
	}
	parts := db.Partition(3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
		if p.NumItems() != db.NumItems() {
			t.Error("partition lost NumItems")
		}
	}
	if total != 10 {
		t.Errorf("total = %d", total)
	}
	if parts[0].Len()-parts[2].Len() > 1 {
		t.Errorf("unbalanced: %d vs %d", parts[0].Len(), parts[2].Len())
	}
	// More parts than transactions.
	small := NewDB()
	mustAdd(t, small, 1)
	if got := small.Partition(5); len(got) != 1 {
		t.Errorf("over-partition = %d parts", len(got))
	}
}

func TestToVertical(t *testing.T) {
	db := NewDB()
	mustAdd(t, db, 1, 2)
	mustAdd(t, db, 2)
	mustAdd(t, db, 1, 2, 3)
	v := db.ToVertical()
	if v.NumTx != 3 {
		t.Errorf("NumTx = %d", v.NumTx)
	}
	wantTids := map[int][]int{1: {0, 2}, 2: {0, 1, 2}, 3: {2}}
	for item, want := range wantTids {
		got := v.TIDLists[item]
		if len(got) != len(want) {
			t.Fatalf("item %d tids = %v, want %v", item, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("item %d tids = %v, want %v", item, got, want)
			}
		}
	}
}

func TestIntersectSorted(t *testing.T) {
	got := IntersectSorted([]int{1, 3, 5, 7}, []int{2, 3, 5, 8})
	want := []int{3, 5}
	if len(got) != len(want) || got[0] != 3 || got[1] != 5 {
		t.Errorf("IntersectSorted = %v, want %v", got, want)
	}
	if got := IntersectSorted(nil, []int{1}); len(got) != 0 {
		t.Errorf("nil intersect = %v", got)
	}
}

func TestReadWriteBasket(t *testing.T) {
	in := "1 2 3\n\n# comment\n2 3\n5\n"
	db, err := ReadBasket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Fatalf("Len = %d", db.Len())
	}
	var sb strings.Builder
	if err := db.WriteBasket(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBasket(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("round trip Len = %d", back.Len())
	}
	for i := range db.Transactions {
		if !db.Transactions[i].Equal(back.Transactions[i]) {
			t.Errorf("tx %d: %v != %v", i, db.Transactions[i], back.Transactions[i])
		}
	}
}

func TestReadBasketErrors(t *testing.T) {
	if _, err := ReadBasket(strings.NewReader("1 x 3\n")); err == nil {
		t.Error("non-integer should error")
	}
	if _, err := ReadBasket(strings.NewReader("1 -2\n")); !errors.Is(err, ErrNegativeItem) {
		t.Errorf("negative error = %v", err)
	}
}

// Property: NewItemset always yields a sorted, duplicate-free set
// containing exactly the input values.
func TestNewItemsetProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		items := make([]int, len(raw))
		for i, v := range raw {
			items[i] = int(v)
		}
		s := NewItemset(items...)
		if !sort.IntsAreSorted(s) {
			return false
		}
		for i := 1; i < len(s); i++ {
			if s[i] == s[i-1] {
				return false
			}
		}
		for _, v := range items {
			if !s.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ContainsAll agrees with a naive map-based subset test.
func TestContainsAllProperty(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		a := make([]int, len(aRaw))
		for i, v := range aRaw {
			a[i] = int(v % 32)
		}
		b := make([]int, len(bRaw))
		for i, v := range bRaw {
			b[i] = int(v % 32)
		}
		sa, sb := NewItemset(a...), NewItemset(b...)
		naive := true
		m := make(map[int]bool)
		for _, v := range sa {
			m[v] = true
		}
		for _, v := range sb {
			if !m[v] {
				naive = false
				break
			}
		}
		return sa.ContainsAll(sb) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: IntersectSorted of tid lists equals the support semantics.
func TestVerticalSupportProperty(t *testing.T) {
	f := func(txRaw [][3]uint8) bool {
		if len(txRaw) == 0 || len(txRaw) > 50 {
			return true
		}
		db := NewDB()
		for _, tx := range txRaw {
			items := []int{int(tx[0] % 8), int(tx[1] % 8), int(tx[2] % 8)}
			if err := db.Add(items...); err != nil {
				return false
			}
		}
		v := db.ToVertical()
		// Pairwise: |tids(a) ∩ tids(b)| == Support({a,b}).
		for a := 0; a < 8; a++ {
			for b := a + 1; b < 8; b++ {
				got := len(IntersectSorted(v.TIDLists[a], v.TIDLists[b]))
				want := db.Support(NewItemset(a, b))
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
