package transactions

import (
	"bytes"
	"encoding/hex"
	"errors"
	"math/rand"
	"testing"
)

func TestStableCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		db := NewDB()
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			row := make([]int, rng.Intn(8))
			for j := range row {
				row[j] = rng.Intn(500)
			}
			if err := db.Add(row...); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := db.EncodeStable(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeStableDB(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != db.Len() || got.NumItems() != db.NumItems() {
			t.Fatalf("trial %d: got %d tx / %d items, want %d / %d",
				trial, got.Len(), got.NumItems(), db.Len(), db.NumItems())
		}
		for i := range db.Transactions {
			if !got.Transactions[i].Equal(db.Transactions[i]) {
				t.Fatalf("trial %d: transaction %d mismatch: %v vs %v",
					trial, i, got.Transactions[i], db.Transactions[i])
			}
		}
	}
}

// TestStableCodecGolden pins the wire format: these exact bytes must
// decode forever, or old snapshots become unreadable.
func TestStableCodecGolden(t *testing.T) {
	db := NewDB()
	for _, row := range [][]int{{3, 1, 2}, {}, {7}, {0, 128, 4}} {
		if err := db.Add(row...); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.EncodeStable(&buf); err != nil {
		t.Fatal(err)
	}
	const want = "0104030101010001070300047c"
	if got := hex.EncodeToString(buf.Bytes()); got != want {
		t.Fatalf("stable encoding changed:\n got %s\nwant %s", got, want)
	}
	dec, err := DecodeStableDB(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != 4 || dec.NumItems() != 129 {
		t.Fatalf("golden decode: %d tx, %d items", dec.Len(), dec.NumItems())
	}
}

func TestStableCodecErrors(t *testing.T) {
	db := NewDB()
	if err := db.Add(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.EncodeStable(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for n := 0; n < len(valid); n++ {
			if _, err := DecodeStable(bytes.NewReader(valid[:n])); !errors.Is(err, ErrBadEncoding) {
				t.Fatalf("prefix %d: got %v, want ErrBadEncoding", n, err)
			}
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte{0x7f}, valid[1:]...)
		if _, err := DecodeStable(bytes.NewReader(bad)); !errors.Is(err, ErrBadEncoding) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("zero delta", func(t *testing.T) {
		// version, 1 tx, 2 items, first 5, delta 0 (duplicate).
		bad := []byte{stableFormatV1, 0x01, 0x02, 0x05, 0x00}
		if _, err := DecodeStable(bytes.NewReader(bad)); !errors.Is(err, ErrBadEncoding) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("huge count", func(t *testing.T) {
		// 1 tx claiming 2^40 items.
		var bad bytes.Buffer
		bad.WriteByte(stableFormatV1)
		bad.WriteByte(0x01)
		bad.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
		if _, err := DecodeStable(bytes.NewReader(bad.Bytes())); !errors.Is(err, ErrBadEncoding) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("non-normalized encode", func(t *testing.T) {
		if err := EncodeStable(&bytes.Buffer{}, []Itemset{{3, 1}}); !errors.Is(err, ErrBadEncoding) {
			t.Fatalf("got %v", err)
		}
	})
}
