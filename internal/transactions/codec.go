package transactions

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The stable encoding is the snapshot wire format of the durability
// layer (internal/wal): a database encoded today must decode
// byte-identically forever, so the format is pinned by a golden test.
//
// Layout:
//
//	byte    format version (stableFormatV1)
//	uvarint number of transactions
//	per transaction:
//	  uvarint item count
//	  uvarint first item, then uvarint deltas (strictly positive) —
//	  itemsets are sorted ascending with no duplicates, so deltas are
//	  >= 1 and the decoder rejects 0 as corruption.
const stableFormatV1 = 0x01

// ErrBadEncoding reports a stable-encoded stream that is truncated,
// structurally invalid, or violates the sorted-set invariant.
var ErrBadEncoding = errors.New("transactions: invalid stable encoding")

// maxStableItems caps one transaction's declared item count, so a
// corrupt length can't drive a giant allocation before the stream runs
// dry.
const maxStableItems = 1 << 24

// EncodeStable writes txs in the stable binary snapshot format.
func EncodeStable(w io.Writer, txs []Itemset) error {
	bw := bufio.NewWriter(w)
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := bw.WriteByte(stableFormatV1); err != nil {
		return err
	}
	if err := put(uint64(len(txs))); err != nil {
		return err
	}
	for _, tx := range txs {
		if err := put(uint64(len(tx))); err != nil {
			return err
		}
		prev := 0
		for i, item := range tx {
			if item < 0 || (i > 0 && item <= prev) {
				return fmt.Errorf("%w: encoding non-normalized itemset", ErrBadEncoding)
			}
			delta := item - prev
			if i == 0 {
				delta = item
			}
			if err := put(uint64(delta)); err != nil {
				return err
			}
			prev = item
		}
	}
	return bw.Flush()
}

// DecodeStable reads one stable-encoded transaction list. Every returned
// row is a valid Itemset (sorted ascending, no duplicates, non-negative
// items) — the decoder verifies the invariant instead of re-normalizing,
// so a corrupt stream fails loudly rather than silently reordering data.
func DecodeStable(r io.Reader) ([]Itemset, error) {
	br := bufio.NewReader(r)
	version, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	if version != stableFormatV1 {
		return nil, fmt.Errorf("%w: unknown format version %#x", ErrBadEncoding, version)
	}
	numTx, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: transaction count: %v", ErrBadEncoding, err)
	}
	txs := []Itemset{}
	for t := uint64(0); t < numTx; t++ {
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: transaction %d: %v", ErrBadEncoding, t, err)
		}
		if count > maxStableItems {
			return nil, fmt.Errorf("%w: transaction %d declares %d items", ErrBadEncoding, t, count)
		}
		tx := make(Itemset, 0, count)
		prev := uint64(0)
		for i := uint64(0); i < count; i++ {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: transaction %d item %d: %v", ErrBadEncoding, t, i, err)
			}
			if i > 0 && delta == 0 {
				return nil, fmt.Errorf("%w: transaction %d: zero delta (duplicate item)", ErrBadEncoding, t)
			}
			item := prev + delta
			if item > uint64(int(^uint(0)>>1)) {
				return nil, fmt.Errorf("%w: transaction %d: item overflows int", ErrBadEncoding, t)
			}
			tx = append(tx, int(item))
			prev = item
		}
		txs = append(txs, tx)
	}
	return txs, nil
}

// EncodeStable writes the database in the stable binary snapshot format.
func (db *DB) EncodeStable(w io.Writer) error {
	return EncodeStable(w, db.Transactions)
}

// DecodeStableDB reads one stable-encoded database, rebuilding the
// item-universe bookkeeping that Add normally maintains.
func DecodeStableDB(r io.Reader) (*DB, error) {
	txs, err := DecodeStable(r)
	if err != nil {
		return nil, err
	}
	db := NewDB()
	for _, tx := range txs {
		if len(tx) > 0 && tx[len(tx)-1]+1 > db.numItems {
			db.numItems = tx[len(tx)-1] + 1
		}
		db.Transactions = append(db.Transactions, tx)
	}
	return db, nil
}
