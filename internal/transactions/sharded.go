package transactions

import (
	"errors"
	"fmt"
)

// Errors returned by ShardedDB.
var (
	// ErrTIDRange reports a delete of a transaction id outside [0, Len()).
	ErrTIDRange = errors.New("transactions: transaction id out of range")
)

// DefaultShardCap is the default per-shard transaction capacity of a
// ShardedDB. It is a multiple of 64 so that per-shard bitset views stay
// word-aligned (see ShardedDB).
const DefaultShardCap = 1024

// versionedShard is one fixed-capacity run of transactions with a version
// counter that is bumped on every mutation, so caches keyed by (shard,
// version) can tell clean shards from dirty ones without diffing contents.
type versionedShard struct {
	txs     []Itemset
	version uint64
}

// ShardedDB is the updatable counterpart of DB: transactions are stored in
// fixed-capacity shards, appends fill the last shard, and deletes compact
// within the owning shard only. Every mutation bumps the owning shard's
// version, which is how the incremental mining backend (internal/assoc)
// knows which per-shard count caches are stale — an update re-counts only
// the dirty shards and re-merges the cached clean ones.
//
// The shard capacity is always rounded up to a multiple of 64 so that a
// per-shard bitset over shard-local transaction ids occupies whole 64-bit
// words; concatenating per-shard bitsets into a database-wide vertical view
// is then pure word copying (see ConcatBitsets) with no bit shifting.
//
// A transaction's global id is its position in the concatenation of the
// live shards, so deletes shift the ids of later transactions. Support
// counts do not depend on ids, only on the multiset of transactions, which
// is why shard-local compaction preserves mining results exactly.
//
// ShardedDB is not safe for concurrent mutation; the incremental miner
// reads shards concurrently only between mutations.
type ShardedDB struct {
	shardCap int
	shards   []*versionedShard
	numItems int // 1 + max item id ever seen (monotone, like DB's)
	total    int // live transactions across shards
}

// NewShardedDB returns an empty sharded database. shardCap <= 0 selects
// DefaultShardCap; any other value is rounded up to a multiple of 64.
func NewShardedDB(shardCap int) *ShardedDB {
	if shardCap <= 0 {
		shardCap = DefaultShardCap
	}
	if r := shardCap % 64; r != 0 {
		shardCap += 64 - r
	}
	return &ShardedDB{shardCap: shardCap}
}

// NewShardedDBFrom bulk-loads db into a new sharded database with the
// given shard capacity (see NewShardedDB for its normalisation). The
// itemsets are shared with db, not copied; treat db as read-only afterwards.
func NewShardedDBFrom(db *DB, shardCap int) *ShardedDB {
	s := NewShardedDB(shardCap)
	for _, tx := range db.Transactions {
		s.appendSet(tx)
	}
	return s
}

// ShardCap returns the (normalised) per-shard transaction capacity.
func (s *ShardedDB) ShardCap() int { return s.shardCap }

// Len returns the number of live transactions.
func (s *ShardedDB) Len() int { return s.total }

// NumShards returns the number of shards, including any emptied by deletes.
func (s *ShardedDB) NumShards() int { return len(s.shards) }

// NumItems returns 1 + the largest item id ever added. Like DB.NumItems it
// is monotone: deleting the last transaction containing the largest item
// does not shrink it, which only costs zero-count slots in pass-1 arrays.
func (s *ShardedDB) NumItems() int { return s.numItems }

// AbsoluteSupport converts a relative support in (0, 1] to the minimum
// transaction count over the current live size, with DB.AbsoluteSupport's
// exact rounding (one shared helper) so thresholds match a from-scratch
// run on a snapshot.
func (s *ShardedDB) AbsoluteSupport(rel float64) int {
	return absoluteSupport(rel, s.total)
}

// Append adds one transaction, normalising it to a sorted set, into the
// last shard (opening a new shard when the last one is full). Only that
// shard's version changes.
func (s *ShardedDB) Append(items ...int) error {
	for _, it := range items {
		if it < 0 {
			return fmt.Errorf("%w: %d", ErrNegativeItem, it)
		}
	}
	s.appendSet(NewItemset(items...))
	return nil
}

func (s *ShardedDB) appendSet(tx Itemset) {
	if len(tx) > 0 && tx[len(tx)-1]+1 > s.numItems {
		s.numItems = tx[len(tx)-1] + 1
	}
	last := len(s.shards) - 1
	if last < 0 || len(s.shards[last].txs) >= s.shardCap {
		s.shards = append(s.shards, &versionedShard{})
		last++
	}
	sh := s.shards[last]
	sh.txs = append(sh.txs, tx)
	sh.version++
	s.total++
}

// DeleteAt removes the transaction with global id tid (its position in the
// live concatenation) and returns it. The owning shard compacts in place,
// so only its version changes; later shards keep their contents and
// versions even though their transactions' global ids shift down.
func (s *ShardedDB) DeleteAt(tid int) (Itemset, error) {
	if tid < 0 || tid >= s.total {
		return nil, fmt.Errorf("%w: %d (len %d)", ErrTIDRange, tid, s.total)
	}
	for _, sh := range s.shards {
		if tid >= len(sh.txs) {
			tid -= len(sh.txs)
			continue
		}
		tx := sh.txs[tid]
		sh.txs = append(sh.txs[:tid:tid], sh.txs[tid+1:]...)
		sh.version++
		s.total--
		return tx, nil
	}
	// Unreachable: the shard lengths sum to s.total.
	return nil, fmt.Errorf("%w: %d", ErrTIDRange, tid)
}

// ShardView returns shard i as a zero-copy Shard (Base set to the shard's
// current global offset) together with its version. The view aliases the
// store; callers must not mutate transactions through it and must not hold
// it across mutations.
func (s *ShardedDB) ShardView(i int) (Shard, uint64) {
	base := 0
	for j := 0; j < i; j++ {
		base += len(s.shards[j].txs)
	}
	sh := s.shards[i]
	return Shard{Transactions: sh.txs, Base: base}, sh.version
}

// Version returns shard i's version counter.
func (s *ShardedDB) Version(i int) uint64 { return s.shards[i].version }

// ToVerticalBitset builds the database-wide vertical bitset layout by
// constructing one bitset per item per shard and concatenating them with
// ConcatBitsets — whole-word copies for every full shard, since shard
// capacities are multiples of 64. This is the word-aligned bridge for
// vertical-layout (Eclat-style) backends over the updatable store; the
// result is identical to Snapshot().ToVerticalBitset().
func (s *ShardedDB) ToVerticalBitset() *VerticalBits {
	parts := make(map[int][]*Bitset)
	for si, sh := range s.shards {
		shardBits := make(map[int]*Bitset)
		for off, tx := range sh.txs {
			for _, item := range tx {
				b := shardBits[item]
				if b == nil {
					b = NewBitset(len(sh.txs))
					shardBits[item] = b
				}
				b.Set(off)
			}
		}
		// Every item's part list must stay aligned with the shard
		// sequence, so items absent from this shard get an empty part and
		// items first seen now get empty parts for the shards passed.
		for item := range parts {
			if shardBits[item] == nil {
				shardBits[item] = NewBitset(len(sh.txs))
			}
		}
		for item, b := range shardBits {
			if parts[item] == nil {
				for j := 0; j < si; j++ {
					parts[item] = append(parts[item], NewBitset(len(s.shards[j].txs)))
				}
			}
			parts[item] = append(parts[item], b)
		}
	}
	v := &VerticalBits{Bits: make(map[int]*Bitset, len(parts)), NumTx: s.total}
	for item, ps := range parts {
		v.Bits[item] = ConcatBitsets(ps...)
	}
	return v
}

// Snapshot materialises the live transactions as a plain DB, recomputing
// NumItems from the live contents the way a fresh load would, so mining the
// snapshot is byte-identical to mining a from-scratch database. The
// itemsets are shared with the store; treat the snapshot as read-only.
func (s *ShardedDB) Snapshot() *DB {
	db := &DB{Transactions: make([]Itemset, 0, s.total)}
	for _, sh := range s.shards {
		for _, tx := range sh.txs {
			if len(tx) > 0 && tx[len(tx)-1]+1 > db.numItems {
				db.numItems = tx[len(tx)-1] + 1
			}
			db.Transactions = append(db.Transactions, tx)
		}
	}
	return db
}
