package transactions

import (
	"math/rand"
	"testing"
)

func TestShardedDBCapNormalisation(t *testing.T) {
	if got := NewShardedDB(0).ShardCap(); got != DefaultShardCap {
		t.Fatalf("default cap = %d, want %d", got, DefaultShardCap)
	}
	if got := NewShardedDB(100).ShardCap(); got != 128 {
		t.Fatalf("cap 100 normalised to %d, want 128", got)
	}
	if got := NewShardedDB(64).ShardCap(); got != 64 {
		t.Fatalf("cap 64 normalised to %d, want 64", got)
	}
}

func TestShardedDBAppendDelete(t *testing.T) {
	s := NewShardedDB(64)
	for i := 0; i < 130; i++ {
		if err := s.Append(i%7, (i+1)%7); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 130 || s.NumShards() != 3 {
		t.Fatalf("len=%d shards=%d, want 130/3", s.Len(), s.NumShards())
	}
	if s.NumItems() != 7 {
		t.Fatalf("NumItems=%d, want 7", s.NumItems())
	}

	// Deleting from the middle shard bumps only its version.
	v0, v1, v2 := s.Version(0), s.Version(1), s.Version(2)
	tx, err := s.DeleteAt(70) // shard 1, local offset 6
	if err != nil {
		t.Fatal(err)
	}
	if tx == nil {
		t.Fatal("DeleteAt returned nil itemset")
	}
	if s.Len() != 129 {
		t.Fatalf("len=%d after delete, want 129", s.Len())
	}
	if s.Version(0) != v0 || s.Version(1) != v1+1 || s.Version(2) != v2 {
		t.Fatalf("versions after middle delete: %d/%d/%d (was %d/%d/%d); only shard 1 should bump",
			s.Version(0), s.Version(1), s.Version(2), v0, v1, v2)
	}

	// Appends touch only the last shard.
	if err := s.Append(3); err != nil {
		t.Fatal(err)
	}
	if s.Version(0) != v0 || s.Version(1) != v1+1 {
		t.Fatal("append dirtied a non-last shard")
	}

	if _, err := s.DeleteAt(-1); err == nil {
		t.Fatal("DeleteAt(-1) should fail")
	}
	if _, err := s.DeleteAt(s.Len()); err == nil {
		t.Fatal("DeleteAt(len) should fail")
	}
	if err := s.Append(-1); err == nil {
		t.Fatal("Append(-1) should fail")
	}
}

func TestShardedDBSnapshotMatchesPlainDB(t *testing.T) {
	plain := NewDB()
	s := NewShardedDB(64)
	add := func(items ...int) {
		if err := plain.Add(items...); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(items...); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		add(i%11, (i*3)%11, (i*7)%11)
	}
	// Delete the same global positions from both.
	for _, tid := range []int{150, 90, 3, 0, 77} {
		if _, err := s.DeleteAt(tid); err != nil {
			t.Fatal(err)
		}
		plain.Transactions = append(plain.Transactions[:tid:tid], plain.Transactions[tid+1:]...)
	}
	snap := s.Snapshot()
	if snap.Len() != plain.Len() {
		t.Fatalf("snapshot len=%d, want %d", snap.Len(), plain.Len())
	}
	for i := range plain.Transactions {
		if !snap.Transactions[i].Equal(plain.Transactions[i]) {
			t.Fatalf("tx %d: snapshot %v != plain %v", i, snap.Transactions[i], plain.Transactions[i])
		}
	}
	if snap.NumItems() != plain.NumItems() {
		t.Fatalf("snapshot NumItems=%d, want %d", snap.NumItems(), plain.NumItems())
	}

	// ShardView bases tile the snapshot.
	seen := 0
	for i := 0; i < s.NumShards(); i++ {
		view, _ := s.ShardView(i)
		if view.Base != seen {
			t.Fatalf("shard %d base=%d, want %d", i, view.Base, seen)
		}
		seen += len(view.Transactions)
	}
	if seen != s.Len() {
		t.Fatalf("shard views cover %d txs, want %d", seen, s.Len())
	}
}

func TestShardedDBAbsoluteSupportMatchesDB(t *testing.T) {
	s := NewShardedDB(64)
	db := NewDB()
	for i := 0; i < 97; i++ {
		_ = s.Append(i % 5)
		_ = db.Add(i % 5)
	}
	for _, rel := range []float64{0.001, 0.01, 0.333, 0.5, 1} {
		if got, want := s.AbsoluteSupport(rel), db.AbsoluteSupport(rel); got != want {
			t.Fatalf("AbsoluteSupport(%v) = %d, want %d", rel, got, want)
		}
	}
}

func TestConcatBitsetsAligned(t *testing.T) {
	a := NewBitset(128)
	b := NewBitset(64)
	c := NewBitset(30)
	for _, i := range []int{0, 63, 64, 127} {
		a.Set(i)
	}
	b.Set(5)
	c.Set(29)
	out := ConcatBitsets(a, b, c)
	if out.Len() != 222 {
		t.Fatalf("len=%d, want 222", out.Len())
	}
	want := []int{0, 63, 64, 127, 128 + 5, 192 + 29}
	if got := out.OnesCount(); got != len(want) {
		t.Fatalf("popcount=%d, want %d", got, len(want))
	}
	for _, i := range want {
		if !out.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
}

func TestConcatBitsetsUnaligned(t *testing.T) {
	// First part ends mid-word: the tail must be shifted, not word-copied.
	a := NewBitset(10)
	b := NewBitset(100)
	a.Set(9)
	b.Set(0)
	b.Set(99)
	out := ConcatBitsets(a, b)
	if out.Len() != 110 {
		t.Fatalf("len=%d, want 110", out.Len())
	}
	for _, i := range []int{9, 10, 109} {
		if !out.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if out.OnesCount() != 3 {
		t.Fatalf("popcount=%d, want 3", out.OnesCount())
	}
}

func TestConcatBitsetsEmptyParts(t *testing.T) {
	// Empty shard views happen in practice: deletes can empty a shard, and
	// ShardedDB.ToVerticalBitset pads items with zero-length parts. Empty
	// parts must contribute nothing and shift nothing.
	empty := NewBitset(0)
	if out := ConcatBitsets(); out.Len() != 0 || out.OnesCount() != 0 {
		t.Fatalf("concat of nothing: len=%d popcount=%d", out.Len(), out.OnesCount())
	}
	if out := ConcatBitsets(empty, empty); out.Len() != 0 || out.OnesCount() != 0 {
		t.Fatalf("concat of empties: len=%d popcount=%d", out.Len(), out.OnesCount())
	}
	a := NewBitset(70)
	a.Set(0)
	a.Set(69)
	for _, parts := range [][]*Bitset{
		{empty, a},
		{a, empty},
		{empty, a, empty},
	} {
		out := ConcatBitsets(parts...)
		if out.Len() != 70 || out.OnesCount() != 2 || !out.Has(0) || !out.Has(69) {
			t.Fatalf("concat with empty parts: len=%d popcount=%d", out.Len(), out.OnesCount())
		}
	}
}

func TestConcatBitsetsSingleShard(t *testing.T) {
	// One part: the concat must be a faithful copy, not an alias.
	a := NewBitset(130)
	for _, i := range []int{0, 64, 129} {
		a.Set(i)
	}
	out := ConcatBitsets(a)
	if out.Len() != a.Len() || out.OnesCount() != a.OnesCount() {
		t.Fatalf("single-part concat: len=%d popcount=%d", out.Len(), out.OnesCount())
	}
	out.Set(1)
	if a.Has(1) {
		t.Fatal("single-part concat aliases its input")
	}
}

func TestConcatBitsetsWordBoundaryCaps(t *testing.T) {
	// Non-power-of-two shard caps that are still multiples of 64 (the
	// ShardedDB invariant — e.g. shardCap 192) must take the word-copy path and
	// agree bit-for-bit with a brute-force rebuild, including bits at the
	// first/last slot of every word boundary.
	for _, shardCap := range []int{64, 192, 320} {
		nParts := 3
		parts := make([]*Bitset, nParts)
		var wantBits []int
		for p := 0; p < nParts; p++ {
			b := NewBitset(shardCap)
			for _, off := range []int{0, 1, 63, 64, shardCap - 65, shardCap - 64, shardCap - 1} {
				if off >= 0 && off < shardCap {
					b.Set(off)
					wantBits = append(wantBits, p*shardCap+off)
				}
			}
			parts[p] = b
		}
		out := ConcatBitsets(parts...)
		if out.Len() != nParts*shardCap {
			t.Fatalf("shardCap %d: len=%d, want %d", shardCap, out.Len(), nParts*shardCap)
		}
		want := NewBitset(nParts * shardCap)
		for _, i := range wantBits {
			want.Set(i)
		}
		if out.OnesCount() != want.OnesCount() {
			t.Fatalf("shardCap %d: popcount=%d, want %d", shardCap, out.OnesCount(), want.OnesCount())
		}
		for i := 0; i < out.Len(); i++ {
			if out.Has(i) != want.Has(i) {
				t.Fatalf("shardCap %d: bit %d = %v, want %v", shardCap, i, out.Has(i), want.Has(i))
			}
		}
	}
	// A word-multiple part followed by a short tail (the live last shard):
	// only the tail may sit past a word boundary.
	a := NewBitset(192)
	a.Set(191)
	tail := NewBitset(17)
	tail.Set(16)
	out := ConcatBitsets(a, tail)
	if out.Len() != 209 || !out.Has(191) || !out.Has(192+16) || out.OnesCount() != 2 {
		t.Fatalf("word-multiple + tail: len=%d popcount=%d", out.Len(), out.OnesCount())
	}
}

func TestShardedDBToVerticalBitset(t *testing.T) {
	// The word-aligned per-shard concatenation must reproduce the plain
	// whole-database vertical bitset view — including items that first
	// appear mid-stream (earlier shards need empty padding), items absent
	// from later shards, and shards left unaligned by deletes.
	s := NewShardedDB(64)
	for i := 0; i < 150; i++ {
		_ = s.Append(i%5, (i*3)%5)
	}
	for i := 0; i < 20; i++ {
		_ = s.Append(7) // item 7 first appears in the last shard
	}
	if _, err := s.DeleteAt(30); err != nil { // shard 0 now unaligned
		t.Fatal(err)
	}
	got := s.ToVerticalBitset()
	want := s.Snapshot().ToVerticalBitset()
	if got.NumTx != want.NumTx {
		t.Fatalf("NumTx = %d, want %d", got.NumTx, want.NumTx)
	}
	if len(got.Bits) != len(want.Bits) {
		t.Fatalf("items = %d, want %d", len(got.Bits), len(want.Bits))
	}
	for item, wantBits := range want.Bits {
		gotBits := got.Bits[item]
		if gotBits == nil {
			t.Fatalf("item %d missing", item)
		}
		if gotBits.Len() != wantBits.Len() || gotBits.OnesCount() != wantBits.OnesCount() {
			t.Fatalf("item %d: len/popcount %d/%d != %d/%d",
				item, gotBits.Len(), gotBits.OnesCount(), wantBits.Len(), wantBits.OnesCount())
		}
		for tid := 0; tid < s.Len(); tid++ {
			if gotBits.Has(tid) != wantBits.Has(tid) {
				t.Fatalf("item %d tid %d: concat=%v whole=%v", item, tid, gotBits.Has(tid), wantBits.Has(tid))
			}
		}
	}
}

// TestShardedDBRandomizedDeleteToEmpty is the DeleteAt compaction audit:
// randomized interleavings of appends and deletes — biased towards
// deleting tail elements and draining shards to empty — are verified
// against a plain-slice reference model after every mutation (Snapshot
// contents, live length, shard-length bookkeeping) with per-shard version
// stamps checked to move exactly on the mutated shard.
func TestShardedDBRandomizedDeleteToEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 30; trial++ {
		s := NewShardedDB(64)
		var model []Itemset

		checkState := func(step string) {
			t.Helper()
			if s.Len() != len(model) {
				t.Fatalf("trial %d %s: Len = %d, want %d", trial, step, s.Len(), len(model))
			}
			snap := s.Snapshot()
			if len(snap.Transactions) != len(model) {
				t.Fatalf("trial %d %s: snapshot len = %d, want %d", trial, step, len(snap.Transactions), len(model))
			}
			for i, tx := range model {
				if !snap.Transactions[i].Equal(tx) {
					t.Fatalf("trial %d %s: snapshot[%d] = %v, want %v", trial, step, i, snap.Transactions[i], tx)
				}
			}
			total := 0
			for i := 0; i < s.NumShards(); i++ {
				view, _ := s.ShardView(i)
				if view.Base != total {
					t.Fatalf("trial %d %s: shard %d base = %d, want %d", trial, step, i, view.Base, total)
				}
				total += len(view.Transactions)
			}
			if total != s.Len() {
				t.Fatalf("trial %d %s: shard lengths sum to %d, want %d", trial, step, total, s.Len())
			}
		}

		versions := func() []uint64 {
			out := make([]uint64, s.NumShards())
			for i := range out {
				out[i] = s.Version(i)
			}
			return out
		}

		for step := 0; step < 200; step++ {
			before := versions()
			// Bias towards deletes so shards drain to empty regularly, and
			// towards the tail so "last element of the tail shard" is hit.
			del := s.Len() > 0 && rng.Intn(3) != 0
			if del {
				tid := rng.Intn(s.Len())
				if rng.Intn(2) == 0 {
					tid = s.Len() - 1
				}
				got, err := s.DeleteAt(tid)
				if err != nil {
					t.Fatalf("trial %d: DeleteAt(%d): %v", trial, tid, err)
				}
				if !got.Equal(model[tid]) {
					t.Fatalf("trial %d: DeleteAt(%d) = %v, want %v", trial, tid, got, model[tid])
				}
				model = append(model[:tid:tid], model[tid+1:]...)
			} else {
				n := rng.Intn(4)
				items := make([]int, n)
				for j := range items {
					items[j] = rng.Intn(10)
				}
				if err := s.Append(items...); err != nil {
					t.Fatalf("trial %d: Append: %v", trial, err)
				}
				model = append(model, NewItemset(items...))
			}
			checkState("mutate")
			// Exactly one shard's version may have moved (a fresh tail
			// shard appears with its own first bump).
			after := versions()
			bumps := 0
			for i := range before {
				if after[i] != before[i] {
					bumps++
				}
			}
			if len(after) > len(before) {
				bumps += len(after) - len(before)
			}
			if bumps != 1 {
				t.Fatalf("trial %d: %d shard versions moved in one mutation", trial, bumps)
			}
		}

		// Drain to empty: the store must stay consistent the whole way
		// down and accept appends again afterwards.
		for s.Len() > 0 {
			tid := s.Len() - 1
			if rng.Intn(2) == 0 {
				tid = rng.Intn(s.Len())
			}
			if _, err := s.DeleteAt(tid); err != nil {
				t.Fatalf("trial %d drain: %v", trial, err)
			}
			model = append(model[:tid:tid], model[tid+1:]...)
			checkState("drain")
		}
		if err := s.Append(1, 2, 3); err != nil {
			t.Fatalf("trial %d: append after drain: %v", trial, err)
		}
		model = append(model, NewItemset(1, 2, 3))
		checkState("refill")
		if _, err := s.DeleteAt(s.Len()); err == nil {
			t.Fatalf("trial %d: out-of-range delete accepted", trial)
		}
	}
}

// TestShardedDBVerticalBitsetWithEmptyShards pins ToVerticalBitset after
// shards drain to empty: the word-aligned concat must keep matching the
// snapshot's vertical layout even when interior shards hold no
// transactions.
func TestShardedDBVerticalBitsetWithEmptyShards(t *testing.T) {
	s := NewShardedDB(64)
	for i := 0; i < 200; i++ {
		if err := s.Append(i%5, 5+i%3); err != nil {
			t.Fatal(err)
		}
	}
	// Drain the middle shard (global ids 64..127) completely.
	for i := 0; i < 64; i++ {
		if _, err := s.DeleteAt(64); err != nil {
			t.Fatal(err)
		}
	}
	got := s.ToVerticalBitset()
	want := s.Snapshot().ToVerticalBitset()
	if got.NumTx != want.NumTx {
		t.Fatalf("NumTx = %d, want %d", got.NumTx, want.NumTx)
	}
	if len(got.Bits) != len(want.Bits) {
		t.Fatalf("items = %d, want %d", len(got.Bits), len(want.Bits))
	}
	for item, wb := range want.Bits {
		gb, ok := got.Bits[item]
		if !ok {
			t.Fatalf("item %d missing", item)
		}
		if gb.OnesCount() != wb.OnesCount() {
			t.Fatalf("item %d: count %d, want %d", item, gb.OnesCount(), wb.OnesCount())
		}
		for tid := 0; tid < got.NumTx; tid++ {
			if gb.Has(tid) != wb.Has(tid) {
				t.Fatalf("item %d tid %d: %v, want %v", item, tid, gb.Has(tid), wb.Has(tid))
			}
		}
	}
}
