package transactions

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestBitsetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		want := map[int]bool{}
		b := NewBitset(n)
		for i := 0; i < n/3+1; i++ {
			tid := rng.Intn(n)
			want[tid] = true
			b.Set(tid)
		}
		if got := b.OnesCount(); got != len(want) {
			t.Fatalf("OnesCount=%d want %d", got, len(want))
		}
		var tids []int
		tids = b.AppendTIDs(tids)
		if len(tids) != len(want) {
			t.Fatalf("AppendTIDs returned %d tids, want %d", len(tids), len(want))
		}
		for i, tid := range tids {
			if !want[tid] {
				t.Fatalf("unexpected tid %d", tid)
			}
			if i > 0 && tids[i-1] >= tid {
				t.Fatalf("tids not strictly ascending: %v", tids)
			}
			if !b.Has(tid) {
				t.Fatalf("Has(%d)=false after Set", tid)
			}
		}
	}
}

func TestBitsetAndMatchesIntersectSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 64 + rng.Intn(200)
		a := randomTIDs(rng, n)
		b := randomTIDs(rng, n)
		want := IntersectSorted(a, b)

		ba, bb := BitsetFromTIDs(a, n), BitsetFromTIDs(b, n)
		if got := AndCount(ba, bb); got != len(want) {
			t.Fatalf("AndCount=%d want %d", got, len(want))
		}
		out := AndBitset(ba, bb)
		if got := out.AppendTIDs(nil); !sameInts(got, want) {
			t.Fatalf("AndBitset tids=%v want %v", got, want)
		}
		if out.OnesCount() != len(want) {
			t.Fatalf("OnesCount=%d want %d", out.OnesCount(), len(want))
		}
		// In-place And must agree and report the popcount.
		cp := ba.Clone()
		if sup := cp.And(bb); sup != len(want) {
			t.Fatalf("And returned %d want %d", sup, len(want))
		}
		if got := cp.AppendTIDs(nil); !sameInts(got, want) {
			t.Fatalf("in-place And tids=%v want %v", got, want)
		}
		// ba must be untouched by AndBitset.
		if got := ba.AppendTIDs(nil); !sameInts(got, a) {
			t.Fatalf("AndBitset mutated its input")
		}
	}
}

func TestBitsetBounds(t *testing.T) {
	b := NewBitset(10)
	b.Set(-1)
	b.Set(10)
	if b.OnesCount() != 0 {
		t.Fatalf("out-of-range Set changed the bitset")
	}
	if b.Has(-1) || b.Has(10) {
		t.Fatalf("out-of-range Has returned true")
	}
	empty := NewBitset(0)
	if empty.OnesCount() != 0 || empty.Len() != 0 {
		t.Fatalf("empty bitset misbehaves")
	}
}

func TestToVerticalBitsetMatchesVertical(t *testing.T) {
	db := NewDB()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		items := make([]int, 1+rng.Intn(6))
		for j := range items {
			items[j] = rng.Intn(12)
		}
		if err := db.Add(items...); err != nil {
			t.Fatal(err)
		}
	}
	vert := db.ToVertical()
	vb := db.ToVerticalBitset()
	if vb.NumTx != vert.NumTx {
		t.Fatalf("NumTx=%d want %d", vb.NumTx, vert.NumTx)
	}
	if len(vb.Bits) != len(vert.TIDLists) {
		t.Fatalf("%d items in bitset layout, %d in tid-list layout", len(vb.Bits), len(vert.TIDLists))
	}
	for item, tids := range vert.TIDLists {
		got := vb.Bits[item].AppendTIDs(nil)
		if !sameInts(got, tids) {
			t.Fatalf("item %d: bitset tids %v want %v", item, got, tids)
		}
	}
}

func TestShards(t *testing.T) {
	db := NewDB()
	for i := 0; i < 10; i++ {
		if err := db.Add(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []int{-1, 0, 1, 2, 3, 7, 10, 25} {
		shards := db.Shards(n)
		wantShards := n
		if wantShards < 1 {
			wantShards = 1
		}
		if wantShards > db.Len() {
			wantShards = db.Len()
		}
		if len(shards) != wantShards {
			t.Fatalf("Shards(%d) returned %d shards, want %d", n, len(shards), wantShards)
		}
		// Shards must tile the database exactly, in order, with correct bases.
		next := 0
		for _, sh := range shards {
			if sh.Base != next {
				t.Fatalf("Shards(%d): base %d want %d", n, sh.Base, next)
			}
			if len(sh.Transactions) == 0 {
				t.Fatalf("Shards(%d): empty shard", n)
			}
			for i, tx := range sh.Transactions {
				if !tx.Equal(db.Transactions[sh.Base+i]) {
					t.Fatalf("Shards(%d): tx mismatch at global tid %d", n, sh.Base+i)
				}
			}
			next += len(sh.Transactions)
		}
		if next != db.Len() {
			t.Fatalf("Shards(%d) covered %d transactions, want %d", n, next, db.Len())
		}
	}
	if got := NewDB().Shards(4); got != nil {
		t.Fatalf("empty DB shards = %v, want nil", got)
	}
}

func randomTIDs(rng *rand.Rand, n int) []int {
	set := map[int]bool{}
	for i := 0; i < n/4+1; i++ {
		set[rng.Intn(n)] = true
	}
	out := make([]int, 0, len(set))
	for tid := range set {
		out = append(out, tid)
	}
	// IntersectSorted needs ascending input.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func sameInts(a, b []int) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}
