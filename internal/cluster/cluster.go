// Package cluster implements the clustering algorithms surveyed by the
// tutorial: k-means (Lloyd), the k-medoid family PAM / CLARA / CLARANS
// (Kaufman & Rousseeuw; Ng & Han, VLDB'94), agglomerative hierarchical
// clustering with the classic linkages, density-based DBSCAN (Ester et al.,
// KDD'96), and the CF-tree-based BIRCH (Zhang, Ramakrishnan & Livny,
// SIGMOD'96).
//
// All algorithms operate on [][]float64 row-major point sets and are
// deterministic given their seed. Costs span the survey's spectrum:
// k-means is O(iters·n·k·d); PAM is O(iters·k·(n-k)²) which CLARA tames by
// sampling and CLARANS by randomized neighbour search; hierarchical
// linkage is O(n²·d) space and worse time; DBSCAN is O(n²) scanning or
// ~O(n log n) with the grid index; BIRCH clusters in one pass over a
// bounded-memory CF tree.
package cluster

import (
	"errors"
	"fmt"
	"math"
)

// Errors shared across the package.
var (
	ErrBadK      = errors.New("cluster: k must be in [1, n]")
	ErrNoPoints  = errors.New("cluster: empty point set")
	ErrDims      = errors.New("cluster: points have inconsistent dimensions")
	ErrBadParams = errors.New("cluster: invalid parameters")
)

// Noise is the assignment label DBSCAN gives to noise points.
const Noise = -1

// Result is the common output shape of the clusterers.
type Result struct {
	// Assignments maps each input point to a cluster id (or Noise).
	Assignments []int
	// Centers holds cluster centroids for centroid-based methods; nil
	// otherwise.
	Centers [][]float64
	// Medoids holds medoid point indices for medoid-based methods; nil
	// otherwise.
	Medoids []int
	// Cost is the algorithm's objective: SSE for k-means/BIRCH, the sum
	// of point-to-medoid distances for the k-medoid family, 0 for methods
	// without a single objective (hierarchical, DBSCAN).
	Cost float64
	// Iterations counts outer iterations where meaningful.
	Iterations int
}

// NumClusters returns the number of distinct non-noise clusters.
func (r *Result) NumClusters() int {
	seen := make(map[int]struct{})
	for _, a := range r.Assignments {
		if a != Noise {
			seen[a] = struct{}{}
		}
	}
	return len(seen)
}

// SquaredEuclidean returns the squared L2 distance.
func SquaredEuclidean(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Euclidean returns the L2 distance.
func Euclidean(a, b []float64) float64 {
	return math.Sqrt(SquaredEuclidean(a, b))
}

// Manhattan returns the L1 distance.
func Manhattan(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// validate checks the shared preconditions and returns (n, dims).
func validate(points [][]float64) (int, int, error) {
	if len(points) == 0 {
		return 0, 0, ErrNoPoints
	}
	dims := len(points[0])
	if dims == 0 {
		return 0, 0, fmt.Errorf("%w: zero-dimensional points", ErrDims)
	}
	for i, p := range points {
		if len(p) != dims {
			return 0, 0, fmt.Errorf("%w: point %d has %d dims, want %d", ErrDims, i, len(p), dims)
		}
	}
	return len(points), dims, nil
}

func validateK(points [][]float64, k int) (int, int, error) {
	n, dims, err := validate(points)
	if err != nil {
		return 0, 0, err
	}
	if k < 1 || k > n {
		return 0, 0, fmt.Errorf("%w: k=%d, n=%d", ErrBadK, k, n)
	}
	return n, dims, nil
}

// SSE computes the sum of squared distances of each point to its assigned
// center, skipping noise points.
func SSE(points [][]float64, assignments []int, centers [][]float64) float64 {
	total := 0.0
	for i, p := range points {
		a := assignments[i]
		if a == Noise || a >= len(centers) {
			continue
		}
		total += SquaredEuclidean(p, centers[a])
	}
	return total
}

// MedoidCost computes the sum of Euclidean distances of each point to its
// nearest medoid — the k-medoid objective.
func MedoidCost(points [][]float64, medoids []int) float64 {
	total := 0.0
	for _, p := range points {
		best := math.Inf(1)
		for _, m := range medoids {
			if d := Euclidean(p, points[m]); d < best {
				best = d
			}
		}
		total += best
	}
	return total
}

// assignToNearest fills assignments with the index of the nearest center
// and returns the SSE.
func assignToNearest(points [][]float64, centers [][]float64, assignments []int) float64 {
	total := 0.0
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for c, ctr := range centers {
			if d := SquaredEuclidean(p, ctr); d < bestD {
				best, bestD = c, d
			}
		}
		assignments[i] = best
		total += bestD
	}
	return total
}
