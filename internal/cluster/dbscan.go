package cluster

import (
	"fmt"
	"math"
)

// DBSCAN is the density-based clusterer of Ester, Kriegel, Sander & Xu
// (KDD'96). A point with at least MinPts neighbours within Eps is a core
// point; clusters are the maximal sets of density-connected points; the
// rest is noise (label -1).
//
// The paper used an R*-tree for region queries; this implementation offers
// a uniform grid index with cell side Eps (UseIndex), which serves the
// same purpose on the low-dimensional benchmark data, plus the O(n²)
// brute-force scan for the runtime comparison.
type DBSCAN struct {
	Eps      float64
	MinPts   int
	UseIndex bool
}

// Run clusters the points.
func (d *DBSCAN) Run(points [][]float64) (*Result, error) {
	n, dims, err := validate(points)
	if err != nil {
		return nil, err
	}
	if d.Eps <= 0 || d.MinPts < 1 {
		return nil, fmt.Errorf("%w: eps=%v minPts=%d", ErrBadParams, d.Eps, d.MinPts)
	}
	var query func(i int) []int
	if d.UseIndex {
		g := newGridIndex(points, d.Eps, dims)
		query = func(i int) []int { return g.regionQuery(points, i, d.Eps) }
	} else {
		query = func(i int) []int { return bruteRegionQuery(points, i, d.Eps) }
	}

	const unvisited = -2
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unvisited
	}
	clusterID := 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		neighbors := query(i)
		if len(neighbors) < d.MinPts {
			labels[i] = Noise
			continue
		}
		labels[i] = clusterID
		// Expand cluster with a worklist; a noise point reached here
		// becomes a border point of the cluster.
		queue := append([]int(nil), neighbors...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == Noise {
				labels[j] = clusterID
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = clusterID
			jn := query(j)
			if len(jn) >= d.MinPts {
				queue = append(queue, jn...)
			}
		}
		clusterID++
	}
	return &Result{Assignments: labels}, nil
}

func bruteRegionQuery(points [][]float64, i int, eps float64) []int {
	var out []int
	eps2 := eps * eps
	for j, p := range points {
		if SquaredEuclidean(points[i], p) <= eps2 {
			out = append(out, j)
		}
	}
	return out
}

// gridIndex buckets points into cells of side eps; a region query only
// inspects the 3^dims neighbouring cells.
type gridIndex struct {
	eps   float64
	dims  int
	cells map[string][]int
	mins  []float64
}

func newGridIndex(points [][]float64, eps float64, dims int) *gridIndex {
	g := &gridIndex{eps: eps, dims: dims, cells: make(map[string][]int)}
	g.mins = make([]float64, dims)
	for d := 0; d < dims; d++ {
		g.mins[d] = math.Inf(1)
		for _, p := range points {
			if p[d] < g.mins[d] {
				g.mins[d] = p[d]
			}
		}
	}
	for i, p := range points {
		key := g.cellKey(g.coords(p))
		g.cells[key] = append(g.cells[key], i)
	}
	return g
}

func (g *gridIndex) coords(p []float64) []int {
	c := make([]int, g.dims)
	for d := 0; d < g.dims; d++ {
		c[d] = int(math.Floor((p[d] - g.mins[d]) / g.eps))
	}
	return c
}

func (g *gridIndex) cellKey(c []int) string {
	out := make([]byte, 0, len(c)*4)
	for i, v := range c {
		if i > 0 {
			out = append(out, ':')
		}
		if v < 0 {
			out = append(out, '-')
			v = -v
		}
		out = appendUint(out, v)
	}
	return string(out)
}

func appendUint(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

func (g *gridIndex) regionQuery(points [][]float64, i int, eps float64) []int {
	base := g.coords(points[i])
	eps2 := eps * eps
	var out []int
	// Enumerate the 3^dims neighbourhood.
	offsets := make([]int, g.dims)
	for d := range offsets {
		offsets[d] = -1
	}
	cell := make([]int, g.dims)
	for {
		for d := range cell {
			cell[d] = base[d] + offsets[d]
		}
		for _, j := range g.cells[g.cellKey(cell)] {
			if SquaredEuclidean(points[i], points[j]) <= eps2 {
				out = append(out, j)
			}
		}
		// Odometer increment over {-1,0,1}^dims.
		d := 0
		for ; d < g.dims; d++ {
			offsets[d]++
			if offsets[d] <= 1 {
				break
			}
			offsets[d] = -1
		}
		if d == g.dims {
			break
		}
	}
	return out
}
