package cluster

import (
	"math"
	"math/rand"

	"repro/internal/stats"
)

// PAM is Kaufman & Rousseeuw's Partitioning Around Medoids: a greedy BUILD
// phase followed by a SWAP phase that examines every (medoid, non-medoid)
// exchange until no swap improves the cost. Exact but O(k(n-k)^2) per
// iteration — the baseline CLARA and CLARANS approximate.
type PAM struct {
	K       int
	MaxIter int // zero means 100 swap rounds
}

// Run clusters the points.
func (p *PAM) Run(points [][]float64) (*Result, error) {
	if _, _, err := validateK(points, p.K); err != nil {
		return nil, err
	}
	maxIter := p.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	medoids := pamBuild(points, p.K)
	iters := pamSwap(points, medoids, maxIter)
	return medoidResult(points, medoids, iters), nil
}

// pamBuild greedily selects medoids: the first minimises total distance;
// each next one maximises the cost reduction.
func pamBuild(points [][]float64, k int) []int {
	n := len(points)
	medoids := make([]int, 0, k)

	// First medoid: point with minimal total distance to all others.
	best, bestCost := 0, math.Inf(1)
	for i := range points {
		c := 0.0
		for j := range points {
			c += Euclidean(points[i], points[j])
		}
		if c < bestCost {
			best, bestCost = i, c
		}
	}
	medoids = append(medoids, best)

	// nearest[i] is the distance from i to its closest chosen medoid.
	nearest := make([]float64, n)
	for i := range points {
		nearest[i] = Euclidean(points[i], points[best])
	}
	for len(medoids) < k {
		bestGain, bestIdx := -1.0, -1
		for cand := range points {
			if contains(medoids, cand) {
				continue
			}
			gain := 0.0
			for j := range points {
				if d := Euclidean(points[j], points[cand]); d < nearest[j] {
					gain += nearest[j] - d
				}
			}
			if gain > bestGain {
				bestGain, bestIdx = gain, cand
			}
		}
		medoids = append(medoids, bestIdx)
		for j := range points {
			if d := Euclidean(points[j], points[bestIdx]); d < nearest[j] {
				nearest[j] = d
			}
		}
	}
	return medoids
}

// pamSwap performs best-improvement swaps until a local optimum, mutating
// medoids in place, and returns the number of swap rounds.
func pamSwap(points [][]float64, medoids []int, maxIter int) int {
	cost := MedoidCost(points, medoids)
	iters := 0
	for ; iters < maxIter; iters++ {
		bestCost, bestM, bestC := cost, -1, -1
		for mi := range medoids {
			saved := medoids[mi]
			for cand := range points {
				if contains(medoids, cand) {
					continue
				}
				medoids[mi] = cand
				if c := MedoidCost(points, medoids); c < bestCost {
					bestCost, bestM, bestC = c, mi, cand
				}
			}
			medoids[mi] = saved
		}
		if bestM < 0 {
			break
		}
		medoids[bestM] = bestC
		cost = bestCost
	}
	return iters
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// medoidResult assigns points to their closest medoid.
func medoidResult(points [][]float64, medoids []int, iters int) *Result {
	assignments := make([]int, len(points))
	cost := 0.0
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for mi, m := range medoids {
			if d := Euclidean(p, points[m]); d < bestD {
				best, bestD = mi, d
			}
		}
		assignments[i] = best
		cost += bestD
	}
	return &Result{
		Assignments: assignments,
		Medoids:     append([]int(nil), medoids...),
		Cost:        cost,
		Iterations:  iters,
	}
}

// CLARA (Clustering LARge Applications) runs PAM on random samples and
// keeps the medoid set with the lowest full-dataset cost. Kaufman &
// Rousseeuw recommend 5 samples of size 40+2k.
type CLARA struct {
	K          int
	NumSamples int // zero means 5
	SampleSize int // zero means 40 + 2k
	Seed       int64
}

// Run clusters the points.
func (c *CLARA) Run(points [][]float64) (*Result, error) {
	n, _, err := validateK(points, c.K)
	if err != nil {
		return nil, err
	}
	samples := c.NumSamples
	if samples <= 0 {
		samples = 5
	}
	size := c.SampleSize
	if size <= 0 {
		size = 40 + 2*c.K
	}
	if size > n {
		size = n
	}
	if size < c.K {
		size = c.K
	}
	rng := rand.New(rand.NewSource(c.Seed))

	var bestMedoids []int
	bestCost := math.Inf(1)
	for s := 0; s < samples; s++ {
		idx := stats.SampleWithoutReplacement(rng, n, size)
		sample := make([][]float64, len(idx))
		for i, id := range idx {
			sample[i] = points[id]
		}
		pam := &PAM{K: c.K}
		res, err := pam.Run(sample)
		if err != nil {
			return nil, err
		}
		// Map sample medoids back to full-dataset indices.
		medoids := make([]int, len(res.Medoids))
		for i, m := range res.Medoids {
			medoids[i] = idx[m]
		}
		if cost := MedoidCost(points, medoids); cost < bestCost {
			bestCost, bestMedoids = cost, medoids
		}
	}
	return medoidResult(points, bestMedoids, samples), nil
}

// CLARANS (Ng & Han, VLDB'94) searches the graph whose nodes are medoid
// sets and whose edges are single swaps: from a random node it examines up
// to MaxNeighbor random neighbours, moving whenever one improves the cost;
// a node surviving MaxNeighbor examinations is a local optimum. NumLocal
// restarts keep the best local optimum.
type CLARANS struct {
	K           int
	NumLocal    int // zero means 2 (paper's recommendation)
	MaxNeighbor int // zero means max(250, 1.25% of k(n-k)) per the paper
	Seed        int64
}

// Run clusters the points.
func (c *CLARANS) Run(points [][]float64) (*Result, error) {
	n, _, err := validateK(points, c.K)
	if err != nil {
		return nil, err
	}
	numLocal := c.NumLocal
	if numLocal <= 0 {
		numLocal = 2
	}
	maxNeighbor := c.MaxNeighbor
	if maxNeighbor <= 0 {
		maxNeighbor = int(0.0125 * float64(c.K*(n-c.K)))
		if maxNeighbor < 250 {
			maxNeighbor = 250
		}
	}
	rng := rand.New(rand.NewSource(c.Seed))

	var bestMedoids []int
	bestCost := math.Inf(1)
	totalMoves := 0
	for local := 0; local < numLocal; local++ {
		current := stats.SampleWithoutReplacement(rng, n, c.K)
		cost := MedoidCost(points, current)
		examined := 0
		for examined < maxNeighbor {
			mi := rng.Intn(c.K)
			cand := rng.Intn(n)
			if contains(current, cand) {
				examined++
				continue
			}
			saved := current[mi]
			current[mi] = cand
			if newCost := MedoidCost(points, current); newCost < cost {
				cost = newCost
				examined = 0
				totalMoves++
			} else {
				current[mi] = saved
				examined++
			}
		}
		if cost < bestCost {
			bestCost = cost
			bestMedoids = append([]int(nil), current...)
		}
	}
	return medoidResult(points, bestMedoids, totalMoves), nil
}
