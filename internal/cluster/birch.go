package cluster

import (
	"fmt"
	"math"
)

// BIRCH (Zhang, Ramakrishnan & Livny, SIGMOD'96) summarises the dataset in
// one scan into a CF-tree — a height-balanced tree of clustering features
// CF = (N, LS, SS) — then clusters the leaf entries globally and refines.
//
// This implementation performs the paper's phases 1 (tree building), 3
// (global clustering of leaf CFs, here weighted k-means on CF centroids)
// and 4 (one refinement pass assigning every point to the nearest final
// centroid). Phase 2 (tree condensing under memory pressure) is not needed
// in-memory: the threshold rebuild loop below serves the same purpose when
// the leaf count exceeds MaxLeafEntries overall.
type BIRCH struct {
	K int
	// Threshold is the initial CF absorption radius; entries absorb a
	// point when the resulting cluster radius stays below it. Zero picks
	// a data-driven default and grows by rebuilds when the tree gets
	// too large.
	Threshold float64
	// Branching caps child entries of interior nodes (paper's B); zero
	// means 8.
	Branching int
	// LeafEntries caps entries per leaf (paper's L); zero means 8.
	LeafEntries int
	// MaxLeaves bounds total leaf entries before a rebuild with doubled
	// threshold; zero means 512.
	MaxLeaves int
	// Seed feeds the phase-3 k-means.
	Seed int64
}

// cf is a clustering feature.
type cf struct {
	n  float64
	ls []float64
	ss float64
}

func newCF(dims int) *cf { return &cf{ls: make([]float64, dims)} }

func (c *cf) addPoint(p []float64) {
	c.n++
	for d := range p {
		c.ls[d] += p[d]
		c.ss += p[d] * p[d]
	}
}

func (c *cf) merge(o *cf) {
	c.n += o.n
	for d := range c.ls {
		c.ls[d] += o.ls[d]
	}
	c.ss += o.ss
}

// centroid writes LS/N into dst and returns it.
func (c *cf) centroid(dst []float64) []float64 {
	for d := range c.ls {
		dst[d] = c.ls[d] / c.n
	}
	return dst
}

// radius is the RMS distance of member points to the centroid:
// sqrt(SS/N - ||LS/N||²), clamped at zero against rounding.
func (c *cf) radius() float64 {
	if c.n == 0 {
		return 0
	}
	m := 0.0
	for d := range c.ls {
		mu := c.ls[d] / c.n
		m += mu * mu
	}
	v := c.ss/c.n - m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// cfNode is a CF-tree node; leaves hold entry CFs, interior nodes hold
// child pointers with summary CFs.
type cfNode struct {
	leaf     bool
	entries  []*cf     // leaf entries, or summaries of children
	children []*cfNode // parallel to entries for interior nodes
}

// Run clusters the points.
func (b *BIRCH) Run(points [][]float64) (*Result, error) {
	n, dims, err := validateK(points, b.K)
	if err != nil {
		return nil, err
	}
	branching := b.Branching
	if branching <= 0 {
		branching = 8
	}
	leafEntries := b.LeafEntries
	if leafEntries <= 0 {
		leafEntries = 8
	}
	maxLeaves := b.MaxLeaves
	if maxLeaves <= 0 {
		maxLeaves = 512
	}
	if maxLeaves < b.K {
		maxLeaves = b.K
	}
	threshold := b.Threshold
	if threshold <= 0 {
		threshold = b.defaultThreshold(points, dims)
	}

	// Phase 1 with rebuild loop: insert all points; if the tree exceeds
	// maxLeaves leaf entries, double the threshold and rebuild from the
	// existing leaf CFs (the paper rebuilds from CFs, not raw points).
	tree := &cfTree{dims: dims, threshold: threshold, branching: branching, leafEntries: leafEntries}
	for _, p := range points {
		tree.insertPoint(p)
		if tree.numLeafEntries > maxLeaves {
			tree = tree.rebuild(threshold * 2)
			threshold *= 2
		}
	}

	// Phase 3: weighted k-means over leaf-entry centroids.
	leaves := tree.leafCFs(nil)
	if len(leaves) < b.K {
		// Degenerate: fall back to direct k-means on the raw points.
		km := &KMeans{K: b.K, Seed: b.Seed}
		return km.Run(points)
	}
	centers, err := weightedKMeans(leaves, b.K, dims, b.Seed)
	if err != nil {
		return nil, err
	}

	// Phase 4: assign raw points to the final centroids.
	assignments := make([]int, n)
	cost := assignToNearest(points, centers, assignments)
	return &Result{
		Assignments: assignments,
		Centers:     centers,
		Cost:        cost,
		Iterations:  1,
	}, nil
}

// defaultThreshold estimates a starting absorption radius from the average
// nearest-distance of a small prefix sample.
func (b *BIRCH) defaultThreshold(points [][]float64, dims int) float64 {
	m := len(points)
	if m > 100 {
		m = 100
	}
	total, cnt := 0.0, 0
	for i := 0; i < m; i++ {
		best := math.Inf(1)
		for j := 0; j < m; j++ {
			if i == j {
				continue
			}
			if d := Euclidean(points[i], points[j]); d < best {
				best = d
			}
		}
		if !math.IsInf(best, 1) {
			total += best
			cnt++
		}
	}
	if cnt == 0 || total == 0 {
		return 1e-6
	}
	return total / float64(cnt)
}

// cfTree wraps the root with the tree parameters.
type cfTree struct {
	dims           int
	threshold      float64
	branching      int
	leafEntries    int
	root           *cfNode
	numLeafEntries int
}

func (t *cfTree) insertPoint(p []float64) {
	e := newCF(t.dims)
	e.addPoint(p)
	t.insertCF(e)
}

func (t *cfTree) insertCF(e *cf) {
	if t.root == nil {
		t.root = &cfNode{leaf: true}
	}
	split := t.insert(t.root, e)
	if split != nil {
		// Root split: grow the tree by one level.
		newRoot := &cfNode{leaf: false}
		for _, child := range []*cfNode{t.root, split} {
			s := newCF(t.dims)
			for _, ce := range child.entries {
				s.merge(ce)
			}
			newRoot.entries = append(newRoot.entries, s)
			newRoot.children = append(newRoot.children, child)
		}
		t.root = newRoot
	}
}

// insert adds e under n and returns a new sibling if n split.
func (t *cfTree) insert(n *cfNode, e *cf) *cfNode {
	if n.leaf {
		// Try to absorb into the closest entry.
		best, bestD := -1, math.Inf(1)
		ec := make([]float64, t.dims)
		e.centroid(ec)
		cc := make([]float64, t.dims)
		for i, entry := range n.entries {
			if d := Euclidean(entry.centroid(cc), ec); d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			trial := &cf{n: n.entries[best].n, ls: append([]float64(nil), n.entries[best].ls...), ss: n.entries[best].ss}
			trial.merge(e)
			if trial.radius() <= t.threshold {
				n.entries[best] = trial
				return nil
			}
		}
		n.entries = append(n.entries, e)
		t.numLeafEntries++
		if len(n.entries) <= t.leafEntries {
			return nil
		}
		return t.splitNode(n)
	}

	// Interior: descend into the child whose summary centroid is closest.
	ec := make([]float64, t.dims)
	e.centroid(ec)
	cc := make([]float64, t.dims)
	best, bestD := 0, math.Inf(1)
	for i, s := range n.entries {
		if d := Euclidean(s.centroid(cc), ec); d < bestD {
			best, bestD = i, d
		}
	}
	split := t.insert(n.children[best], e)
	n.entries[best].merge(e)
	if split == nil {
		return nil
	}
	// Recompute the split child's summary and add the new sibling.
	n.entries[best] = summarize(n.children[best], t.dims)
	s := summarize(split, t.dims)
	n.entries = append(n.entries, s)
	n.children = append(n.children, split)
	if len(n.entries) <= t.branching {
		return nil
	}
	return t.splitNode(n)
}

func summarize(n *cfNode, dims int) *cf {
	s := newCF(dims)
	for _, e := range n.entries {
		s.merge(e)
	}
	return s
}

// splitNode splits n by the farthest-pair seed rule and returns the new
// sibling; n keeps one group.
func (t *cfTree) splitNode(n *cfNode) *cfNode {
	m := len(n.entries)
	cents := make([][]float64, m)
	for i, e := range n.entries {
		cents[i] = e.centroid(make([]float64, t.dims))
	}
	// Farthest pair as seeds.
	s1, s2, worst := 0, 1, -1.0
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if d := SquaredEuclidean(cents[i], cents[j]); d > worst {
				s1, s2, worst = i, j, d
			}
		}
	}
	sib := &cfNode{leaf: n.leaf}
	var keepE, sibE []*cf
	var keepC, sibC []*cfNode
	for i := 0; i < m; i++ {
		toSib := SquaredEuclidean(cents[i], cents[s2]) < SquaredEuclidean(cents[i], cents[s1])
		if i == s1 {
			toSib = false
		}
		if i == s2 {
			toSib = true
		}
		if toSib {
			sibE = append(sibE, n.entries[i])
			if !n.leaf {
				sibC = append(sibC, n.children[i])
			}
		} else {
			keepE = append(keepE, n.entries[i])
			if !n.leaf {
				keepC = append(keepC, n.children[i])
			}
		}
	}
	n.entries, sib.entries = keepE, sibE
	if !n.leaf {
		n.children, sib.children = keepC, sibC
	}
	return sib
}

// rebuild re-inserts all leaf CFs into a fresh tree with a larger
// threshold.
func (t *cfTree) rebuild(newThreshold float64) *cfTree {
	leaves := t.leafCFs(nil)
	nt := &cfTree{
		dims: t.dims, threshold: newThreshold,
		branching: t.branching, leafEntries: t.leafEntries,
	}
	for _, e := range leaves {
		nt.insertCF(e)
	}
	return nt
}

// leafCFs collects every leaf entry.
func (t *cfTree) leafCFs(dst []*cf) []*cf {
	var walk func(n *cfNode)
	walk = func(n *cfNode) {
		if n == nil {
			return
		}
		if n.leaf {
			dst = append(dst, n.entries...)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return dst
}

// weightedKMeans runs Lloyd's algorithm over CF centroids weighted by
// their point counts.
func weightedKMeans(cfs []*cf, k, dims int, seed int64) ([][]float64, error) {
	if len(cfs) < k {
		return nil, fmt.Errorf("%w: %d CF entries for k=%d", ErrBadK, len(cfs), k)
	}
	pts := make([][]float64, len(cfs))
	w := make([]float64, len(cfs))
	for i, c := range cfs {
		pts[i] = c.centroid(make([]float64, dims))
		w[i] = c.n
	}
	// Farthest-first seeding over the CF centroids, weighted toward heavy
	// entries for the first pick: deterministic and robust on the
	// well-separated benchmark mixtures.
	centers := make([][]float64, 0, k)
	first := 0
	for i := range w {
		if w[i] > w[first] {
			first = i
		}
	}
	centers = append(centers, append([]float64(nil), pts[first]...))
	minD := make([]float64, len(pts))
	for i := range pts {
		minD[i] = SquaredEuclidean(pts[i], centers[0])
	}
	for len(centers) < k {
		far := 0
		for i := range pts {
			if minD[i] > minD[far] {
				far = i
			}
		}
		centers = append(centers, append([]float64(nil), pts[far]...))
		for i := range pts {
			if d := SquaredEuclidean(pts[i], centers[len(centers)-1]); d < minD[i] {
				minD[i] = d
			}
		}
	}
	_ = seed
	assign := make([]int, len(pts))
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, p := range pts {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := SquaredEuclidean(p, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		sums := make([][]float64, k)
		counts := make([]float64, k)
		for i := range sums {
			sums[i] = make([]float64, dims)
		}
		for i, p := range pts {
			c := assign[i]
			counts[c] += w[i]
			for d := range p {
				sums[c][d] += p[d] * w[i]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				continue
			}
			for d := range centers[c] {
				centers[c][d] = sums[c][d] / counts[c]
			}
		}
		if !changed {
			break
		}
	}
	return centers, nil
}
