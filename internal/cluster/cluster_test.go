package cluster

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/synth"
)

// wellSeparated returns an easy 3-cluster 2-D dataset with ground truth.
func wellSeparated(t *testing.T, n int) *synth.Points {
	t.Helper()
	p, err := synth.GaussianMixture(synth.GaussianConfig{
		NumPoints: n, NumCluster: 3, Dims: 2, Spread: 0.5, Separation: 60, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDistances(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := Euclidean(a, b); got != 5 {
		t.Errorf("Euclidean = %v", got)
	}
	if got := SquaredEuclidean(a, b); got != 25 {
		t.Errorf("SquaredEuclidean = %v", got)
	}
	if got := Manhattan(a, b); got != 7 {
		t.Errorf("Manhattan = %v", got)
	}
}

func TestValidateErrors(t *testing.T) {
	if _, err := (&KMeans{K: 2}).Run(nil); !errors.Is(err, ErrNoPoints) {
		t.Errorf("empty error = %v", err)
	}
	ragged := [][]float64{{1, 2}, {1}}
	if _, err := (&KMeans{K: 1}).Run(ragged); !errors.Is(err, ErrDims) {
		t.Errorf("ragged error = %v", err)
	}
	pts := [][]float64{{1}, {2}}
	if _, err := (&KMeans{K: 0}).Run(pts); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := (&KMeans{K: 3}).Run(pts); !errors.Is(err, ErrBadK) {
		t.Errorf("k>n error = %v", err)
	}
}

func TestKMeansRecoversSeparatedClusters(t *testing.T) {
	p := wellSeparated(t, 300)
	for _, seeding := range []Seeding{SeedForgy, SeedRandomPartition} {
		km := &KMeans{K: 3, Seed: 11, Seeding: seeding}
		res, err := km.Run(p.X)
		if err != nil {
			t.Fatal(err)
		}
		ri, err := RandIndex(res.Assignments, p.Labels)
		if err != nil {
			t.Fatal(err)
		}
		// Random-partition seeding starts all means near the global
		// centroid and is prone to local minima (the EXP ablation
		// quantifies this); only Forgy gets the strict bar.
		bar := 0.95
		if seeding == SeedRandomPartition {
			bar = 0.70
		}
		if ri < bar {
			t.Errorf("seeding %d: Rand index = %v, want > %v", seeding, ri, bar)
		}
	}
}

func TestKMeansCostMatchesSSE(t *testing.T) {
	p := wellSeparated(t, 150)
	res, err := (&KMeans{K: 3, Seed: 3}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	if got := SSE(p.X, res.Assignments, res.Centers); math.Abs(got-res.Cost) > 1e-9 {
		t.Errorf("Cost = %v, SSE = %v", res.Cost, got)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	p := wellSeparated(t, 100)
	a, _ := (&KMeans{K: 3, Seed: 5}).Run(p.X)
	b, _ := (&KMeans{K: 3, Seed: 5}).Run(p.X)
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestKMeansK1(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 0}, {4, 0}}
	res, err := (&KMeans{K: 1, Seed: 1}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Centers[0][0] != 2 || res.Centers[0][1] != 0 {
		t.Errorf("center = %v, want (2,0)", res.Centers[0])
	}
}

// Property: the k-means cost never increases across Lloyd iterations —
// checked indirectly: final cost <= cost of the initial Forgy assignment.
func TestKMeansImprovesOverInit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		pts := make([][]float64, 60)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		}
		km := &KMeans{K: 4, Seed: seed}
		res, err := km.Run(pts)
		if err != nil {
			return false
		}
		// Recompute: assigning points to final centers must give the
		// reported cost (internal consistency).
		asg := make([]int, len(pts))
		c := assignToNearest(pts, res.Centers, asg)
		return math.Abs(c-res.Cost) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPAMRecoversClusters(t *testing.T) {
	p := wellSeparated(t, 120)
	res, err := (&PAM{K: 3}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	ri, _ := RandIndex(res.Assignments, p.Labels)
	if ri < 0.95 {
		t.Errorf("PAM Rand index = %v", ri)
	}
	if len(res.Medoids) != 3 {
		t.Errorf("medoids = %v", res.Medoids)
	}
	if got := MedoidCost(p.X, res.Medoids); math.Abs(got-res.Cost) > 1e-9 {
		t.Errorf("Cost = %v, MedoidCost = %v", res.Cost, got)
	}
}

func TestPAMSwapImprovesOnBuild(t *testing.T) {
	p := wellSeparated(t, 90)
	build := pamBuild(p.X, 3)
	buildCost := MedoidCost(p.X, build)
	res, err := (&PAM{K: 3}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > buildCost+1e-9 {
		t.Errorf("swap cost %v worse than build cost %v", res.Cost, buildCost)
	}
}

func TestCLARAApproximatesPAM(t *testing.T) {
	p := wellSeparated(t, 200)
	pam, err := (&PAM{K: 3}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	clara, err := (&CLARA{K: 3, Seed: 13}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	if clara.Cost > pam.Cost*1.15 {
		t.Errorf("CLARA cost %v not within 15%% of PAM cost %v", clara.Cost, pam.Cost)
	}
}

func TestCLARANSApproximatesPAM(t *testing.T) {
	p := wellSeparated(t, 200)
	pam, err := (&PAM{K: 3}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	clarans, err := (&CLARANS{K: 3, Seed: 17}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	// The VLDB'94 claim: CLARANS cost within a few percent of PAM's.
	if clarans.Cost > pam.Cost*1.10 {
		t.Errorf("CLARANS cost %v not within 10%% of PAM cost %v", clarans.Cost, pam.Cost)
	}
}

func TestMedoidFamilyValidation(t *testing.T) {
	pts := [][]float64{{1}, {2}}
	for _, run := range []func() (*Result, error){
		func() (*Result, error) { return (&PAM{K: 5}).Run(pts) },
		func() (*Result, error) { return (&CLARA{K: 5}).Run(pts) },
		func() (*Result, error) { return (&CLARANS{K: 5}).Run(pts) },
	} {
		if _, err := run(); !errors.Is(err, ErrBadK) {
			t.Errorf("k>n error = %v", err)
		}
	}
}

func TestHierarchicalLinkages(t *testing.T) {
	p := wellSeparated(t, 90)
	for _, l := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage, WardLinkage} {
		h := &Hierarchical{Linkage: l}
		dend, err := h.Run(p.X)
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if len(dend.Merges) != len(p.X)-1 {
			t.Fatalf("%v: merges = %d", l, len(dend.Merges))
		}
		labels, err := dend.CutK(3)
		if err != nil {
			t.Fatal(err)
		}
		ri, _ := RandIndex(labels, p.Labels)
		if ri < 0.95 {
			t.Errorf("%v: Rand index = %v", l, ri)
		}
	}
}

func TestSingleLinkageChains(t *testing.T) {
	// Single linkage follows chains: two elongated parallel strips should
	// be recovered by single but broken by complete linkage.
	var pts [][]float64
	var truth []int
	for i := 0; i < 30; i++ {
		pts = append(pts, []float64{float64(i), 0})
		truth = append(truth, 0)
		pts = append(pts, []float64{float64(i), 10})
		truth = append(truth, 1)
	}
	single := &Hierarchical{Linkage: SingleLinkage}
	dend, err := single.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := dend.CutK(2)
	if err != nil {
		t.Fatal(err)
	}
	ri, _ := RandIndex(labels, truth)
	if ri != 1 {
		t.Errorf("single linkage Rand index = %v, want 1", ri)
	}
}

func TestCutKBounds(t *testing.T) {
	p := wellSeparated(t, 30)
	dend, err := (&Hierarchical{}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dend.CutK(0); !errors.Is(err, ErrBadK) {
		t.Errorf("CutK(0) error = %v", err)
	}
	if _, err := dend.CutK(31); !errors.Is(err, ErrBadK) {
		t.Errorf("CutK(n+1) error = %v", err)
	}
	labels, err := dend.CutK(30)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	if len(seen) != 30 {
		t.Errorf("CutK(n) clusters = %d", len(seen))
	}
	labels, err = dend.CutK(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatal("CutK(1) must put everything in one cluster")
		}
	}
}

func TestDBSCANOnRings(t *testing.T) {
	p, err := synth.Shapes(synth.ShapeConfig{Kind: synth.Rings, NumPoints: 400, Jitter: 0.03, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	for _, useIndex := range []bool{false, true} {
		db := &DBSCAN{Eps: 0.5, MinPts: 4, UseIndex: useIndex}
		res, err := db.Run(p.X)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.NumClusters(); got != 2 {
			t.Errorf("useIndex=%v: clusters = %d, want 2", useIndex, got)
		}
		ri, _ := RandIndex(res.Assignments, p.Labels)
		if ri < 0.98 {
			t.Errorf("useIndex=%v: Rand index = %v", useIndex, ri)
		}
	}
}

func TestDBSCANBeatsKMeansOnRings(t *testing.T) {
	// The KDD'96 motivation: k-means cannot separate concentric rings.
	p, err := synth.Shapes(synth.ShapeConfig{Kind: synth.Rings, NumPoints: 300, Jitter: 0.03, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	km, err := (&KMeans{K: 2, Seed: 1}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	db, err := (&DBSCAN{Eps: 0.5, MinPts: 4}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	kmRI, _ := RandIndex(km.Assignments, p.Labels)
	dbRI, _ := RandIndex(db.Assignments, p.Labels)
	if dbRI <= kmRI {
		t.Errorf("DBSCAN RI %v <= k-means RI %v", dbRI, kmRI)
	}
}

func TestDBSCANNoiseDetection(t *testing.T) {
	p, err := synth.Shapes(synth.ShapeConfig{
		Kind: synth.Rings, NumPoints: 400, Jitter: 0.02, NoiseFrac: 0.08, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&DBSCAN{Eps: 0.4, MinPts: 4}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	noiseFound := 0
	for _, a := range res.Assignments {
		if a == Noise {
			noiseFound++
		}
	}
	if noiseFound == 0 {
		t.Error("no noise detected despite background noise")
	}
}

func TestDBSCANIndexMatchesBrute(t *testing.T) {
	p := wellSeparated(t, 200)
	brute, err := (&DBSCAN{Eps: 2, MinPts: 4}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := (&DBSCAN{Eps: 2, MinPts: 4, UseIndex: true}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster ids may differ; compare via Rand index == 1 and same noise.
	ri, _ := RandIndex(brute.Assignments, indexed.Assignments)
	if ri != 1 {
		t.Errorf("indexed vs brute Rand index = %v", ri)
	}
	for i := range brute.Assignments {
		if (brute.Assignments[i] == Noise) != (indexed.Assignments[i] == Noise) {
			t.Fatalf("noise disagreement at %d", i)
		}
	}
}

func TestDBSCANValidation(t *testing.T) {
	pts := [][]float64{{1, 2}}
	if _, err := (&DBSCAN{Eps: 0, MinPts: 3}).Run(pts); !errors.Is(err, ErrBadParams) {
		t.Errorf("eps=0 error = %v", err)
	}
	if _, err := (&DBSCAN{Eps: 1, MinPts: 0}).Run(pts); !errors.Is(err, ErrBadParams) {
		t.Errorf("minPts=0 error = %v", err)
	}
}

func TestBIRCHRecoversGrid(t *testing.T) {
	p, err := synth.GaussianGrid(synth.GridConfig{
		NumPoints: 1000, GridSide: 2, CentreDist: 30, Spread: 1, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&BIRCH{K: 4, Seed: 1}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	ri, _ := RandIndex(res.Assignments, p.Labels)
	if ri < 0.95 {
		t.Errorf("BIRCH Rand index = %v", ri)
	}
	if res.NumClusters() != 4 {
		t.Errorf("clusters = %d", res.NumClusters())
	}
}

func TestBIRCHQualityNearKMeans(t *testing.T) {
	p := wellSeparated(t, 600)
	km, err := (&KMeans{K: 3, Seed: 2}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	birch, err := (&BIRCH{K: 3, Seed: 2}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	if birch.Cost > km.Cost*1.5 {
		t.Errorf("BIRCH SSE %v much worse than k-means %v", birch.Cost, km.Cost)
	}
}

func TestBIRCHCompressesLeaves(t *testing.T) {
	p := wellSeparated(t, 2000)
	b := &BIRCH{K: 3, MaxLeaves: 64, Seed: 3}
	res, err := b.Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	ri, _ := RandIndex(res.Assignments, p.Labels)
	if ri < 0.9 {
		t.Errorf("compressed BIRCH Rand index = %v", ri)
	}
}

func TestCFInvariants(t *testing.T) {
	c := newCF(2)
	pts := [][]float64{{1, 2}, {3, 4}, {5, 0}}
	for _, p := range pts {
		c.addPoint(p)
	}
	if c.n != 3 {
		t.Errorf("n = %v", c.n)
	}
	cent := c.centroid(make([]float64, 2))
	if cent[0] != 3 || cent[1] != 2 {
		t.Errorf("centroid = %v", cent)
	}
	// radius² = SS/N - ||mean||² = (1+4+9+16+25)/3 - 13 = 55/3 - 13.
	want := math.Sqrt(55.0/3.0 - 13.0)
	if math.Abs(c.radius()-want) > 1e-12 {
		t.Errorf("radius = %v, want %v", c.radius(), want)
	}
	// Merge equals adding all points to one CF.
	a, b := newCF(2), newCF(2)
	a.addPoint(pts[0])
	b.addPoint(pts[1])
	b.addPoint(pts[2])
	a.merge(b)
	if a.n != c.n || a.ss != c.ss || a.ls[0] != c.ls[0] || a.ls[1] != c.ls[1] {
		t.Error("merge != bulk add")
	}
}

func TestRandIndex(t *testing.T) {
	a := []int{0, 0, 1, 1}
	if ri, err := RandIndex(a, a); err != nil || ri != 1 {
		t.Errorf("identical = %v, %v", ri, err)
	}
	b := []int{1, 1, 0, 0}
	if ri, _ := RandIndex(a, b); ri != 1 {
		t.Errorf("relabelled = %v, want 1", ri)
	}
	c := []int{0, 1, 0, 1}
	ri, _ := RandIndex(a, c)
	// Pairs: (01)(23) same in a; in c (02)(13) same. All 6 pairs:
	// a: same {01,23}; c: same {02,13}; agreements: pairs different in
	// both: {03,12} => 2 agreements of 6.
	if math.Abs(ri-2.0/6.0) > 1e-12 {
		t.Errorf("ri = %v, want 1/3", ri)
	}
	if _, err := RandIndex([]int{1}, []int{1, 2}); !errors.Is(err, ErrLabelLength) {
		t.Errorf("length error = %v", err)
	}
}

func TestPurity(t *testing.T) {
	found := []int{0, 0, 1, 1, Noise}
	truth := []int{5, 5, 6, 5, 6}
	got, err := Purity(found, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 0: 2 of class 5; cluster 1: 1 of each -> best 1.
	// correct = 3 of 5 points.
	if math.Abs(got-0.6) > 1e-12 {
		t.Errorf("purity = %v, want 0.6", got)
	}
	if _, err := Purity([]int{1}, []int{1, 2}); !errors.Is(err, ErrLabelLength) {
		t.Errorf("length error = %v", err)
	}
}

func TestLinkageString(t *testing.T) {
	if SingleLinkage.String() != "single" || WardLinkage.String() != "ward" {
		t.Error("linkage names wrong")
	}
	if Linkage(42).String() != "Linkage(42)" {
		t.Error("unknown linkage name wrong")
	}
}
