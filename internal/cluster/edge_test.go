package cluster

import (
	"testing"
)

func TestKMeansMaxIterRespected(t *testing.T) {
	pts := [][]float64{{0}, {1}, {10}, {11}, {20}, {21}}
	res, err := (&KMeans{K: 3, MaxIter: 1, Seed: 1}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 1 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

func TestKMeansToleranceStopsEarly(t *testing.T) {
	pts := [][]float64{{0}, {1}, {10}, {11}}
	strict, err := (&KMeans{K: 2, Seed: 1}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := (&KMeans{K: 2, Seed: 1, Tolerance: 1e9}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Iterations > strict.Iterations {
		t.Errorf("huge tolerance iterated more: %d vs %d", loose.Iterations, strict.Iterations)
	}
}

func TestKMeansEqualsN(t *testing.T) {
	pts := [][]float64{{0}, {5}, {10}}
	res, err := (&KMeans{K: 3, Seed: 2}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 1e-9 {
		t.Errorf("k=n cost = %v, want 0", res.Cost)
	}
}

func TestCLARASampleLargerThanN(t *testing.T) {
	pts := [][]float64{{0}, {1}, {10}, {11}, {20}}
	res, err := (&CLARA{K: 2, SampleSize: 100, NumSamples: 2, Seed: 1}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Medoids) != 2 {
		t.Errorf("medoids = %v", res.Medoids)
	}
}

func TestHierarchicalSinglePoint(t *testing.T) {
	dend, err := (&Hierarchical{}).Run([][]float64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(dend.Merges) != 0 {
		t.Errorf("merges = %d", len(dend.Merges))
	}
	labels, err := dend.CutK(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 1 || labels[0] != 0 {
		t.Errorf("labels = %v", labels)
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	// Points far apart with strict parameters: everything is noise.
	pts := [][]float64{{0, 0}, {100, 0}, {0, 100}, {100, 100}}
	res, err := (&DBSCAN{Eps: 1, MinPts: 2}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Assignments {
		if a != Noise {
			t.Errorf("point %d = %d, want noise", i, a)
		}
	}
	if res.NumClusters() != 0 {
		t.Errorf("clusters = %d", res.NumClusters())
	}
}

func TestDBSCANSingleCluster(t *testing.T) {
	var pts [][]float64
	for i := 0; i < 20; i++ {
		pts = append(pts, []float64{float64(i) * 0.1, 0})
	}
	res, err := (&DBSCAN{Eps: 0.2, MinPts: 3}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 1 {
		t.Errorf("clusters = %d", res.NumClusters())
	}
}

func TestBIRCHSmallerThanK(t *testing.T) {
	// Fewer leaf entries than k triggers the k-means fallback.
	pts := [][]float64{{0, 0}, {0.1, 0}, {10, 0}, {10.1, 0}, {20, 0}, {20.1, 0}}
	res, err := (&BIRCH{K: 3, Threshold: 100, Seed: 1}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != len(pts) {
		t.Errorf("assignments = %d", len(res.Assignments))
	}
}

func TestMedoidCostZeroWhenAllMedoids(t *testing.T) {
	pts := [][]float64{{1}, {2}, {3}}
	if got := MedoidCost(pts, []int{0, 1, 2}); got != 0 {
		t.Errorf("cost = %v", got)
	}
}

func TestSSESkipsNoise(t *testing.T) {
	pts := [][]float64{{0}, {10}}
	centers := [][]float64{{0}}
	got := SSE(pts, []int{0, Noise}, centers)
	if got != 0 {
		t.Errorf("SSE = %v, want 0 (noise skipped)", got)
	}
}
