package cluster

import (
	"errors"
	"testing"

	"repro/internal/synth"
)

func TestSilhouetteWellSeparated(t *testing.T) {
	p, err := synth.GaussianMixture(synth.GaussianConfig{
		NumPoints: 200, NumCluster: 3, Dims: 2, Spread: 0.5, Separation: 80, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Silhouette(p.X, p.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9 {
		t.Errorf("silhouette of well-separated clusters = %v, want > 0.9", s)
	}
}

func TestSilhouetteRandomLabelsNearZero(t *testing.T) {
	p, err := synth.GaussianMixture(synth.GaussianConfig{
		NumPoints: 200, NumCluster: 3, Dims: 2, Spread: 0.5, Separation: 80, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shuffle labels deterministically: assign by index parity, which cuts
	// across the true clusters.
	labels := make([]int, len(p.Labels))
	for i := range labels {
		labels[i] = i % 2
	}
	s, err := Silhouette(p.X, labels)
	if err != nil {
		t.Fatal(err)
	}
	if s > 0.2 {
		t.Errorf("silhouette of label-scrambled clusters = %v, want near 0", s)
	}
}

func TestSilhouetteRanksKCorrectly(t *testing.T) {
	// On a 2x2 grid of equidistant clusters, the silhouette at the true
	// k=4 beats a forced k=2 merge. (A random-centre mixture would not
	// guarantee this: two centres can land close enough that merging
	// genuinely scores better.)
	p, err := synth.GaussianGrid(synth.GridConfig{
		NumPoints: 200, GridSide: 2, CentreDist: 50, Spread: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s4, err := Silhouette(p.X, p.Labels)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := (&KMeans{K: 2, Seed: 1}).Run(p.X)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Silhouette(p.X, k2.Assignments)
	if err != nil {
		t.Fatal(err)
	}
	if s4 <= s2 {
		t.Errorf("silhouette k=4 (%v) should beat k=2 (%v)", s4, s2)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	pts := [][]float64{{0}, {1}}
	if _, err := Silhouette(pts, []int{0}); !errors.Is(err, ErrLabelLength) {
		t.Errorf("length error = %v", err)
	}
	if _, err := Silhouette(pts, []int{0, 0}); err == nil {
		t.Error("single cluster should error")
	}
	if _, err := Silhouette(pts, []int{Noise, Noise}); err == nil {
		t.Error("all-noise should error")
	}
}

func TestSilhouetteSkipsNoise(t *testing.T) {
	pts := [][]float64{{0, 0}, {0.1, 0}, {10, 0}, {10.1, 0}, {500, 500}}
	labels := []int{0, 0, 1, 1, Noise}
	s, err := Silhouette(pts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9 {
		t.Errorf("silhouette = %v; the distant noise point should not count", s)
	}
}
