package cluster

import (
	"math"
	"math/rand"

	"repro/internal/stats"
)

// Seeding selects the k-means initialisation strategy.
type Seeding int

const (
	// SeedForgy picks k distinct input points as initial centers — the
	// classic Forgy initialisation.
	SeedForgy Seeding = iota
	// SeedRandomPartition assigns points to random clusters and uses the
	// partition means as initial centers (MacQueen-style start).
	SeedRandomPartition
)

// KMeans is Lloyd's algorithm with configurable seeding.
type KMeans struct {
	K       int
	MaxIter int // zero means 100
	Seed    int64
	Seeding Seeding
	// Tolerance stops iteration when the SSE improvement falls below it.
	Tolerance float64
}

// Run clusters the points. Empty clusters are re-seeded with the point
// farthest from its center, the standard repair.
func (km *KMeans) Run(points [][]float64) (*Result, error) {
	n, dims, err := validateK(points, km.K)
	if err != nil {
		return nil, err
	}
	maxIter := km.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	rng := rand.New(rand.NewSource(km.Seed))
	centers := km.initialCenters(points, n, dims, rng)
	assignments := make([]int, n)

	prevCost := math.Inf(1)
	cost := 0.0
	iters := 0
	for iters = 1; iters <= maxIter; iters++ {
		cost = assignToNearest(points, centers, assignments)

		// Recompute means.
		counts := make([]int, km.K)
		for c := range centers {
			for d := range centers[c] {
				centers[c][d] = 0
			}
		}
		for i, p := range points {
			c := assignments[i]
			counts[c]++
			for d := range p {
				centers[c][d] += p[d]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Repair: re-seed the empty cluster with a random point.
				copy(centers[c], points[rng.Intn(n)])
				counts[c] = 1
				continue
			}
			for d := range centers[c] {
				centers[c][d] /= float64(counts[c])
			}
		}
		if prevCost-cost <= km.Tolerance && iters > 1 {
			break
		}
		prevCost = cost
	}
	if iters > maxIter {
		iters = maxIter // loop exited by bound, not by convergence
	}
	// Final assignment against the final centers.
	cost = assignToNearest(points, centers, assignments)
	return &Result{
		Assignments: assignments,
		Centers:     centers,
		Cost:        cost,
		Iterations:  iters,
	}, nil
}

func (km *KMeans) initialCenters(points [][]float64, n, dims int, rng *rand.Rand) [][]float64 {
	centers := make([][]float64, km.K)
	switch km.Seeding {
	case SeedRandomPartition:
		counts := make([]int, km.K)
		for c := range centers {
			centers[c] = make([]float64, dims)
		}
		for _, p := range points {
			c := rng.Intn(km.K)
			counts[c]++
			for d := range p {
				centers[c][d] += p[d]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				copy(centers[c], points[rng.Intn(n)])
				continue
			}
			for d := range centers[c] {
				centers[c][d] /= float64(counts[c])
			}
		}
	default: // SeedForgy
		for i, idx := range stats.SampleWithoutReplacement(rng, n, km.K) {
			centers[i] = append([]float64(nil), points[idx]...)
		}
	}
	return centers
}
