package cluster

import (
	"errors"
	"math"
)

// ErrLabelLength reports mismatched label slices.
var ErrLabelLength = errors.New("cluster: label slices differ in length")

// RandIndex computes the Rand index between two labelings: the fraction of
// point pairs on which the labelings agree (same cluster in both, or
// different clusters in both). Noise labels (-1) are treated as singleton
// clusters distinct from each other, the usual convention when scoring
// DBSCAN against ground truth.
func RandIndex(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLabelLength
	}
	n := len(a)
	if n < 2 {
		return 1, nil
	}
	agree := 0
	total := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameA := a[i] == a[j] && a[i] != Noise
			sameB := b[i] == b[j] && b[i] != Noise
			if sameA == sameB {
				agree++
			}
			total++
		}
	}
	return float64(agree) / float64(total), nil
}

// Silhouette computes the mean silhouette coefficient (Rousseeuw, 1987)
// of a labeling: for each non-noise point, (b-a)/max(a,b) where a is its
// mean distance to its own cluster and b the smallest mean distance to
// another cluster. Points in singleton clusters score 0, the convention
// Rousseeuw recommends; noise points are skipped. Values near 1 indicate
// tight, well-separated clusters. O(n²).
func Silhouette(points [][]float64, labels []int) (float64, error) {
	if len(points) != len(labels) {
		return 0, ErrLabelLength
	}
	byCluster := make(map[int][]int)
	for i, l := range labels {
		if l != Noise {
			byCluster[l] = append(byCluster[l], i)
		}
	}
	if len(byCluster) < 2 {
		return 0, errors.New("cluster: silhouette needs at least two clusters")
	}
	total, counted := 0.0, 0
	for i, l := range labels {
		if l == Noise {
			continue
		}
		own := byCluster[l]
		if len(own) == 1 {
			counted++ // score 0
			continue
		}
		a := 0.0
		for _, j := range own {
			if j != i {
				a += Euclidean(points[i], points[j])
			}
		}
		a /= float64(len(own) - 1)
		b := math.Inf(1)
		for other, members := range byCluster {
			if other == l {
				continue
			}
			d := 0.0
			for _, j := range members {
				d += Euclidean(points[i], points[j])
			}
			d /= float64(len(members))
			if d < b {
				b = d
			}
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
		counted++
	}
	if counted == 0 {
		return 0, errors.New("cluster: no non-noise points")
	}
	return total / float64(counted), nil
}

// Purity computes the weighted average, over found clusters, of the
// fraction of each cluster taken by its dominant ground-truth class.
// Noise points in found count against purity (they form no cluster).
func Purity(found, truth []int) (float64, error) {
	if len(found) != len(truth) {
		return 0, ErrLabelLength
	}
	if len(found) == 0 {
		return 1, nil
	}
	perCluster := make(map[int]map[int]int)
	for i, c := range found {
		if c == Noise {
			continue
		}
		if perCluster[c] == nil {
			perCluster[c] = make(map[int]int)
		}
		perCluster[c][truth[i]]++
	}
	correct := 0
	for _, dist := range perCluster {
		best := 0
		for _, cnt := range dist {
			if cnt > best {
				best = cnt
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(found)), nil
}
