package cluster

import (
	"fmt"
	"math"
)

// Linkage selects the inter-cluster distance update rule for agglomerative
// clustering, implemented via the Lance–Williams recurrence.
type Linkage int

const (
	// SingleLinkage merges on minimum pairwise distance.
	SingleLinkage Linkage = iota
	// CompleteLinkage merges on maximum pairwise distance.
	CompleteLinkage
	// AverageLinkage merges on unweighted average pairwise distance (UPGMA).
	AverageLinkage
	// WardLinkage minimises the within-cluster variance increase.
	WardLinkage
)

// String names the linkage.
func (l Linkage) String() string {
	switch l {
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	case AverageLinkage:
		return "average"
	case WardLinkage:
		return "ward"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Merge records one agglomeration step. Cluster ids: 0..n-1 are the
// original points; n+i is the cluster created by step i.
type Merge struct {
	A, B     int
	Distance float64
	Size     int // points in the merged cluster
}

// Dendrogram is the full merge history of an agglomerative run.
type Dendrogram struct {
	NumPoints int
	Merges    []Merge
}

// Hierarchical is the naive O(n³) agglomerative algorithm of the textbook
// era, adequate for the survey's dataset sizes.
type Hierarchical struct {
	Linkage Linkage
}

// Run builds the full dendrogram.
func (h *Hierarchical) Run(points [][]float64) (*Dendrogram, error) {
	n, _, err := validate(points)
	if err != nil {
		return nil, err
	}
	// active clusters; each has an id, member count, and for Ward the
	// distances start as squared Euclidean.
	type clust struct {
		id   int
		size int
	}
	active := make([]clust, n)
	for i := range active {
		active[i] = clust{id: i, size: 1}
	}
	// Distance matrix over active cluster positions.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			if i == j {
				continue
			}
			if h.Linkage == WardLinkage {
				dist[i][j] = SquaredEuclidean(points[i], points[j])
			} else {
				dist[i][j] = Euclidean(points[i], points[j])
			}
		}
	}

	dend := &Dendrogram{NumPoints: n}
	nextID := n
	for len(active) > 1 {
		// Find the closest pair of active clusters.
		bi, bj, bd := 0, 1, math.Inf(1)
		for i := 0; i < len(active); i++ {
			for j := i + 1; j < len(active); j++ {
				if dist[i][j] < bd {
					bi, bj, bd = i, j, dist[i][j]
				}
			}
		}
		a, b := active[bi], active[bj]
		merged := clust{id: nextID, size: a.size + b.size}
		nextID++
		reported := bd
		if h.Linkage == WardLinkage {
			reported = math.Sqrt(bd)
		}
		dend.Merges = append(dend.Merges, Merge{A: a.id, B: b.id, Distance: reported, Size: merged.size})

		// Lance–Williams update of distances from the merged cluster to
		// every other active cluster; store into row/col bi, drop bj.
		for x := 0; x < len(active); x++ {
			if x == bi || x == bj {
				continue
			}
			dax, dbx := dist[bi][x], dist[bj][x]
			var nd float64
			switch h.Linkage {
			case SingleLinkage:
				nd = math.Min(dax, dbx)
			case CompleteLinkage:
				nd = math.Max(dax, dbx)
			case AverageLinkage:
				na, nb := float64(a.size), float64(b.size)
				nd = (na*dax + nb*dbx) / (na + nb)
			case WardLinkage:
				na, nb, nx := float64(a.size), float64(b.size), float64(active[x].size)
				tot := na + nb + nx
				nd = ((na+nx)*dax + (nb+nx)*dbx - nx*bd) / tot
			}
			dist[bi][x] = nd
			dist[x][bi] = nd
		}
		active[bi] = merged
		// Remove position bj by swapping with the last and shrinking.
		last := len(active) - 1
		active[bj] = active[last]
		for x := 0; x < len(active); x++ {
			dist[bj][x] = dist[last][x]
			dist[x][bj] = dist[x][last]
		}
		dist[bj][bj] = 0
		active = active[:last]
	}
	return dend, nil
}

// CutK flattens the dendrogram into exactly k clusters (the state after
// n-k merges) and returns per-point labels 0..k-1.
func (d *Dendrogram) CutK(k int) ([]int, error) {
	if k < 1 || k > d.NumPoints {
		return nil, fmt.Errorf("%w: k=%d, n=%d", ErrBadK, k, d.NumPoints)
	}
	parent := make([]int, d.NumPoints+len(d.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	steps := d.NumPoints - k
	for i := 0; i < steps; i++ {
		m := d.Merges[i]
		newID := d.NumPoints + i
		parent[find(m.A)] = newID
		parent[find(m.B)] = newID
	}
	labels := make([]int, d.NumPoints)
	rootToLabel := make(map[int]int)
	for i := 0; i < d.NumPoints; i++ {
		r := find(i)
		l, ok := rootToLabel[r]
		if !ok {
			l = len(rootToLabel)
			rootToLabel[r] = l
		}
		labels[i] = l
	}
	return labels, nil
}
