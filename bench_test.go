package repro

// One testing.B benchmark per experiment of the index in DESIGN.md, plus
// the ablation benches for the design decisions it calls out. The dmbench
// command prints the full tables; these benches give allocation-aware
// single-configuration numbers per algorithm.

import (
	"sync"
	"testing"

	"repro/internal/assoc"
	"repro/internal/cluster"
	"repro/internal/knn"
	"repro/internal/seqmine"
	"repro/internal/synth"
	"repro/internal/transactions"
	"repro/internal/tree"
)

// --- shared fixtures, built once ---

var (
	basketOnce sync.Once
	basketDB   *transactions.DB

	seqOnce sync.Once
	seqData []seqmine.Sequence

	pointsOnce sync.Once
	points     [][]float64

	gridOnce sync.Once
	gridPts  [][]float64
)

func baskets(b *testing.B) *transactions.DB {
	b.Helper()
	basketOnce.Do(func() {
		db, err := synth.Baskets(synth.TxI(10, 4, 4000, 94))
		if err != nil {
			panic(err)
		}
		basketDB = db
	})
	return basketDB
}

func sequences(b *testing.B) []seqmine.Sequence {
	b.Helper()
	seqOnce.Do(func() {
		raw, err := synth.Sequences(synth.C10T2S4I1(400, 96))
		if err != nil {
			panic(err)
		}
		seqData = seqmine.FromSynth(raw)
	})
	return seqData
}

func gaussPoints(b *testing.B) [][]float64 {
	b.Helper()
	pointsOnce.Do(func() {
		p, err := synth.GaussianMixture(synth.GaussianConfig{
			NumPoints: 800, NumCluster: 5, Dims: 2, Spread: 1, Separation: 80, Seed: 41,
		})
		if err != nil {
			panic(err)
		}
		points = p.X
	})
	return points
}

func grid(b *testing.B) [][]float64 {
	b.Helper()
	gridOnce.Do(func() {
		p, err := synth.GaussianGrid(synth.GridConfig{
			NumPoints: 20000, GridSide: 2, CentreDist: 40, Spread: 2, Seed: 98,
		})
		if err != nil {
			panic(err)
		}
		gridPts = p.X
	})
	return gridPts
}

// --- EXP-A1: miners at a fixed support ---

func benchMiner(b *testing.B, m assoc.Miner) {
	db := baskets(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Mine(db, 0.0075); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpA1Apriori(b *testing.B)       { benchMiner(b, &assoc.Apriori{}) }
func BenchmarkExpA1FPGrowth(b *testing.B)      { benchMiner(b, &assoc.FPGrowth{}) }
func BenchmarkExpA1AprioriTid(b *testing.B)    { benchMiner(b, &assoc.AprioriTid{}) }
func BenchmarkExpA1AprioriHybrid(b *testing.B) { benchMiner(b, &assoc.AprioriHybrid{}) }
func BenchmarkExpA1AIS(b *testing.B)           { benchMiner(b, &assoc.AIS{}) }
func BenchmarkExpA1SETM(b *testing.B)          { benchMiner(b, &assoc.SETM{}) }
func BenchmarkExpA5Partition(b *testing.B)     { benchMiner(b, &assoc.Partition{NumPartitions: 4}) }
func BenchmarkExpA1DHP(b *testing.B)           { benchMiner(b, &assoc.DHP{}) }

// --- EXP-A3: scale-up is covered by dmbench; here the rule generator ---

func BenchmarkRuleGeneration(b *testing.B) {
	db := baskets(b)
	res, err := (&assoc.Apriori{}).Mine(db, 0.0075)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assoc.GenerateRules(res, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-S1: sequence miners ---

func BenchmarkExpS1AprioriAll(b *testing.B) {
	data := sequences(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&seqmine.AprioriAll{}).Mine(data, 0.03); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpS1GSP(b *testing.B) {
	data := sequences(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&seqmine.GSP{}).Mine(data, 0.03); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-C1: k-medoid family ---

func BenchmarkExpC1KMeans(b *testing.B) {
	pts := gaussPoints(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&cluster.KMeans{K: 5, Seed: 1}).Run(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpC1PAM(b *testing.B) {
	pts := gaussPoints(b)[:300]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&cluster.PAM{K: 5}).Run(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpC1CLARA(b *testing.B) {
	pts := gaussPoints(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&cluster.CLARA{K: 5, Seed: 1}).Run(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpC1CLARANS(b *testing.B) {
	pts := gaussPoints(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&cluster.CLARANS{K: 5, Seed: 1}).Run(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-C2: DBSCAN index ablation ---

func BenchmarkExpC2DBSCANBrute(b *testing.B) {
	pts := gaussPoints(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&cluster.DBSCAN{Eps: 3, MinPts: 5}).Run(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpC2DBSCANGrid(b *testing.B) {
	pts := gaussPoints(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&cluster.DBSCAN{Eps: 3, MinPts: 5, UseIndex: true}).Run(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-C3: BIRCH vs k-means at 20K points ---

func BenchmarkExpC3BIRCH(b *testing.B) {
	pts := grid(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&cluster.BIRCH{K: 4, MaxLeaves: 256, Seed: 1}).Run(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpC3KMeans(b *testing.B) {
	pts := grid(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&cluster.KMeans{K: 4, Seed: 1}).Run(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-C4: hierarchical ---

func BenchmarkExpC4Hierarchical(b *testing.B) {
	pts := gaussPoints(b)[:300]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&cluster.Hierarchical{Linkage: cluster.WardLinkage}).Run(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-T1/T3: classifiers ---

func BenchmarkExpT3TreeBuildF1(b *testing.B) { benchTreeBuild(b, 1) }
func BenchmarkExpT3TreeBuildF7(b *testing.B) { benchTreeBuild(b, 7) }

func benchTreeBuild(b *testing.B, fn int) {
	tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: 5000, Function: fn, Seed: int64(4000 + fn)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Build(tbl, tree.Config{Criterion: tree.GainRatio, MinLeaf: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-K1: kNN query backends ---

func kdFixture(b *testing.B) (*knn.KDTree, [][]float64, [][]float64) {
	b.Helper()
	p, err := synth.GaussianMixture(synth.GaussianConfig{
		NumPoints: 10500, NumCluster: 8, Dims: 2, Spread: 3, Separation: 100, Seed: 55,
	})
	if err != nil {
		b.Fatal(err)
	}
	pts, qs := p.X[:10000], p.X[10000:]
	tr, err := knn.NewKDTree(pts)
	if err != nil {
		b.Fatal(err)
	}
	return tr, pts, qs
}

func BenchmarkExpK1KDTree(b *testing.B) {
	tr, _, qs := kdFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.KNearest(qs[i%len(qs)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpK1Brute(b *testing.B) {
	_, pts, qs := kdFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := knn.BruteKNearest(pts, qs[i%len(qs)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-P1: count-distribution parallelism and vertical layouts ---

// Serial vs parallel counting for the level-wise miners. On multi-core
// hosts the W4 variants should approach the core count; on a single-CPU
// host they measure the engine's overhead instead.
func BenchmarkParallelAprioriW1(b *testing.B) { benchMiner(b, &assoc.Apriori{Workers: 1}) }
func BenchmarkParallelAprioriW2(b *testing.B) { benchMiner(b, &assoc.Apriori{Workers: 2}) }
func BenchmarkParallelAprioriW4(b *testing.B) { benchMiner(b, &assoc.Apriori{Workers: 4}) }
func BenchmarkParallelAprioriW8(b *testing.B) { benchMiner(b, &assoc.Apriori{Workers: 8}) }
func BenchmarkParallelDHPW4(b *testing.B)     { benchMiner(b, &assoc.DHP{Workers: 4}) }
func BenchmarkParallelPartitionW4(b *testing.B) {
	benchMiner(b, &assoc.Partition{NumPartitions: 4, Workers: 4})
}

// --- EXP-P3: pattern growth (per-shard FP-trees + parallel projections) ---

// FPGrowth at the benchmark support and at a low support where candidate
// generation explodes; W4 exercises the per-shard build + per-item fan-out.
func BenchmarkFPGrowthW1(b *testing.B) { benchMiner(b, &assoc.FPGrowth{Workers: 1}) }
func BenchmarkFPGrowthW4(b *testing.B) { benchMiner(b, &assoc.FPGrowth{Workers: 4}) }

// benchDistributed measures the coordinator/worker backend over the
// in-process gob transport — the shipping + serialization + merge overhead
// EXP-P4 tracks, as an allocation-aware single configuration.
func benchDistributed(b *testing.B, engine string, workers int) {
	db := baskets(b)
	d := &assoc.Distributed{Engine: engine, Workers: workers}
	defer d.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Mine(db, 0.0075); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedAprioriW1(b *testing.B)  { benchDistributed(b, assoc.DistEngineApriori, 1) }
func BenchmarkDistributedAprioriW4(b *testing.B)  { benchDistributed(b, assoc.DistEngineApriori, 4) }
func BenchmarkDistributedFPGrowthW4(b *testing.B) { benchDistributed(b, assoc.DistEngineFPGrowth, 4) }

func benchMinerLowSupport(b *testing.B, m assoc.Miner) {
	db := baskets(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Mine(db, 0.001); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLowSupportApriori(b *testing.B)  { benchMinerLowSupport(b, &assoc.Apriori{}) }
func BenchmarkLowSupportFPGrowth(b *testing.B) { benchMinerLowSupport(b, &assoc.FPGrowth{}) }

// Eclat vertical-layout ablation: sorted tid-list merging vs bitset
// word-AND + popcount, on the sparse benchmark fixture and on a dense
// small-universe one where bitsets shine.
func denseBaskets(b *testing.B) *transactions.DB {
	b.Helper()
	denseOnce.Do(func() {
		c := synth.TxI(10, 4, 4000, 94)
		c.NumItems = 100
		c.NumPatterns = 200
		db, err := synth.Baskets(c)
		if err != nil {
			panic(err)
		}
		denseDB = db
	})
	return denseDB
}

var (
	denseOnce sync.Once
	denseDB   *transactions.DB
)

func benchEclat(b *testing.B, db *transactions.DB, layout assoc.TidLayout) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&assoc.Eclat{Layout: layout}).Mine(db, 0.0075); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEclatTIDListSparse(b *testing.B) { benchEclat(b, baskets(b), assoc.LayoutTIDList) }
func BenchmarkEclatBitsetSparse(b *testing.B)  { benchEclat(b, baskets(b), assoc.LayoutBitset) }
func BenchmarkEclatTIDListDense(b *testing.B)  { benchEclat(b, denseBaskets(b), assoc.LayoutTIDList) }
func BenchmarkEclatBitsetDense(b *testing.B)   { benchEclat(b, denseBaskets(b), assoc.LayoutBitset) }

// Micro-ablation: one intersection of two dense tid-sets in each layout.
func intersectFixture() (a, bb []int, ba, bbBits *transactions.Bitset) {
	const n = 100000
	a = make([]int, 0, n/8)
	bb = make([]int, 0, n/8)
	for i := 0; i < n; i++ {
		if i%8 == 0 {
			a = append(a, i)
		}
		if i%8 == 2 || i%16 == 0 {
			bb = append(bb, i)
		}
	}
	return a, bb, transactions.BitsetFromTIDs(a, n), transactions.BitsetFromTIDs(bb, n)
}

func BenchmarkIntersectTIDList(b *testing.B) {
	a, bb, _, _ := intersectFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		transactions.IntersectSorted(a, bb)
	}
}

func BenchmarkIntersectBitset(b *testing.B) {
	_, _, ba, bbBits := intersectFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		transactions.AndBitset(ba, bbBits)
	}
}

// --- ShardedDB hot path: Append / DeleteAt / incremental Maintain ---

// BenchmarkShardedDBAppend measures the per-transaction append cost
// (normalisation + tail-shard fill + version bump), amortised over shard
// openings.
func BenchmarkShardedDBAppend(b *testing.B) {
	pool := baskets(b).Transactions
	store := transactions.NewShardedDB(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Append(pool[i%len(pool)]...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedDBDeleteAt measures delete + re-append pairs against a
// steady-state store, so shard compaction cost is visible without the
// store draining or growing across iterations.
func BenchmarkShardedDBDeleteAt(b *testing.B) {
	pool := baskets(b).Transactions
	store := transactions.NewShardedDB(1024)
	for _, tx := range pool {
		if err := store.Append(tx...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := store.DeleteAt((i * 2654435761) % store.Len())
		if err != nil {
			b.Fatal(err)
		}
		if err := store.Append(tx...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalMaintain10pct measures Maintain with ~10% of the
// shards dirty per step: each iteration deletes a clustered handful from
// one victim shard and re-appends them at the tail (dirtying the victim
// plus the tail shard out of ~31), then maintains. The re-appended
// transactions keep the distribution stationary so steps stay on the
// incremental path rather than border-crossing.
func BenchmarkIncrementalMaintain10pct(b *testing.B) {
	pool := baskets(b).Transactions
	store := transactions.NewShardedDB(128) // D4000 -> ~32 shards
	for _, tx := range pool {
		if err := store.Append(tx...); err != nil {
			b.Fatal(err)
		}
	}
	inc := &assoc.Incremental{}
	if _, _, err := inc.Attach(store, 0.02); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := (i * 7) % (store.NumShards() - 1)
		lo := victim * store.ShardCap()
		for d := 0; d < 8; d++ {
			tid := lo
			if tid >= store.Len() {
				tid = store.Len() - 1
			}
			tx, err := store.DeleteAt(tid)
			if err != nil {
				b.Fatal(err)
			}
			if err := store.Append(tx...); err != nil {
				b.Fatal(err)
			}
		}
		if _, _, err := inc.Maintain(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (design decisions from DESIGN.md) ---

// Hash tree vs map-based candidate counting inside Apriori.
func BenchmarkAblationCountHashTree(b *testing.B) {
	benchMiner(b, &assoc.Apriori{Strategy: assoc.CountHashTree})
}

func BenchmarkAblationCountMap(b *testing.B) {
	benchMiner(b, &assoc.Apriori{Strategy: assoc.CountMap})
}

// k-means seeding strategies.
func BenchmarkAblationSeedForgy(b *testing.B) {
	pts := gaussPoints(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&cluster.KMeans{K: 5, Seed: 1, Seeding: cluster.SeedForgy}).Run(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSeedRandomPartition(b *testing.B) {
	pts := gaussPoints(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&cluster.KMeans{K: 5, Seed: 1, Seeding: cluster.SeedRandomPartition}).Run(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// k-d tree leaf sizes.
func BenchmarkAblationKDLeaf1(b *testing.B)  { benchKDLeaf(b, 1) }
func BenchmarkAblationKDLeaf16(b *testing.B) { benchKDLeaf(b, 16) }
func BenchmarkAblationKDLeaf64(b *testing.B) { benchKDLeaf(b, 64) }

func benchKDLeaf(b *testing.B, leaf int) {
	p, err := synth.GaussianMixture(synth.GaussianConfig{
		NumPoints: 10500, NumCluster: 8, Dims: 2, Spread: 3, Separation: 100, Seed: 55,
	})
	if err != nil {
		b.Fatal(err)
	}
	pts, qs := p.X[:10000], p.X[10000:]
	tr, err := knn.NewKDTreeLeaf(pts, leaf)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.KNearest(qs[i%len(qs)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BIRCH threshold/branching trade-off.
func BenchmarkAblationBIRCHTightLeaves(b *testing.B) { benchBIRCH(b, 64) }
func BenchmarkAblationBIRCHLooseLeaves(b *testing.B) { benchBIRCH(b, 1024) }

func benchBIRCH(b *testing.B, maxLeaves int) {
	pts := grid(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&cluster.BIRCH{K: 4, MaxLeaves: maxLeaves, Seed: 1}).Run(pts); err != nil {
			b.Fatal(err)
		}
	}
}
