// Package repro is a from-scratch Go reproduction of the techniques
// surveyed by "Data Mining Techniques" (SIGMOD 1996): association-rule
// mining (AIS, SETM, Apriori family, Partition, DHP), sequential patterns
// (AprioriAll, GSP), clustering (k-means, PAM/CLARA/CLARANS, hierarchical,
// DBSCAN, BIRCH), classification (decision trees, naive Bayes, kNN, 1R,
// neural networks), the synthetic workload generators their canonical
// evaluations used, and an experiment harness that regenerates those
// evaluations' tables and figures.
//
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for measured-vs-published results. The root-level
// benchmarks in bench_test.go mirror the experiment index.
package repro
