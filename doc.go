// Package repro is a from-scratch Go reproduction of the techniques
// surveyed by "Data Mining Techniques" (SIGMOD 1996): association-rule
// mining (AIS, SETM, Apriori family, Partition, DHP), sequential patterns
// (AprioriAll, GSP), clustering (k-means, PAM/CLARA/CLARANS, hierarchical,
// DBSCAN, BIRCH), classification (decision trees, naive Bayes, kNN, 1R,
// neural networks), the synthetic workload generators their canonical
// evaluations used, and an experiment harness that regenerates those
// evaluations' tables and figures.
//
// The public entry point for frequent-itemset mining is the mining
// package at the module root: a context-aware Mine with functional
// options (MinSupport, Workers, Algorithm, Transport, Progress), a
// MineStream variant yielding per-level results via iter.Seq2, and a
// stateful Session that owns an updatable sharded store and keeps its
// result current under appends and deletes. Everything below this
// paragraph describes the internal engines that facade drives; their
// results are byte-identical through either path, a contract the test
// suite and an exported-API golden gate pin in CI.
//
// Support counting — the hot path of every level-wise miner — runs on a
// shared count-distribution engine (internal/assoc): the transaction
// database is split into contiguous zero-copy shards
// (transactions.DB.Shards), each worker scans its shard into private
// counters (flat item counts, the pass-2 triangular pair array, or a
// hashtree.CountBuffer over the read-only candidate tree), and the
// private counters are merged after the pass. Merged results are
// bit-identical to the serial scan, so Apriori, DHP and Partition take a
// Workers option that changes only wall-clock time. Eclat instead mines
// the vertical layout and picks between sorted tid-lists and
// transactions.Bitset (word-wise AND + popcount) by density. FPGrowth is
// the candidate-free engine: per-shard FP-trees (internal/fptree) merge by
// the same commutative-addition contract into a global tree, and mining
// fans per-item conditional projections out across workers — the
// low-support winner (EXP-P3). assoc.Auto probes the pass-1 scan and
// dispatches each Mine to the expected-fastest of these engines.
//
// The incremental backend (assoc.Incremental over transactions.ShardedDB)
// exploits the same seams under updates: shards are version-stamped, the
// per-shard counting structures are cached, and because integer merges are
// invertible an append or delete re-counts only the dirty shards —
// falling back to a full re-mine only when the maintained frequent set's
// negative border is crossed. Results stay byte-identical to a
// from-scratch run at every step.
//
// The distributed backend (internal/dist + assoc.Distributed) carries the
// same contract across a process boundary: a coordinator ships
// version-stamped shard snapshots to workers over a pluggable transport
// (in-process channels for single-binary use, net/rpc over gob for real
// deployment), workers scan their replicas into the identical per-shard
// structures — including serialized FP-tree builds — and the coordinator
// merges the returned buffers with the same commutative adds, so
// distributed results are byte-identical to local runs (EXP-P4 tracks the
// shipping and serialization overhead). Binding a ShardedDB re-ships only
// dirty shards after updates, which lets assoc.Incremental use Distributed
// as its full-run base.
//
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for measured-vs-published results. The root-level
// benchmarks in bench_test.go mirror the experiment index.
package repro
