// Diagnosis workflow: the supervised end of the tutorial on a medical-style
// screening task — compare the classifier suite with cross-validation,
// rank predictors with chi-square, and extract human-readable decision
// rules from the pruned tree, reporting which rules are pure subsets.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/tree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A screening cohort labelled by benchmark function F4 (age, education
	// and salary interact) with 5% label noise, standing in for clinical
	// outcome data.
	cohort, err := synth.Classify(synth.ClassifyConfig{
		NumRows: 1500, Function: 4, Noise: 0.05, Seed: 77,
	})
	if err != nil {
		return err
	}
	fmt.Printf("cohort of %d cases, %d predictors\n\n", cohort.NumRows(), cohort.NumAttributes()-1)

	// 1. Classifier comparison.
	comps, err := core.CompareClassifiers(cohort, core.Classifiers(), 10, 1)
	if err != nil {
		return err
	}
	fmt.Println("10-fold cross-validated accuracy:")
	for _, c := range comps {
		fmt.Printf("  %-14s %5.1f%%  (macro-F1 %.3f)\n", c.Name, c.Accuracy*100, c.MacroF1)
	}

	// 2. Predictor screening by chi-square against the class, each
	// numeric predictor binned for the contingency table.
	type ranked struct {
		name string
		chi2 float64
		p    float64
	}
	var ranks []ranked
	for j, a := range cohort.Attributes {
		if j == cohort.ClassIndex {
			continue
		}
		table, err := contingency(cohort, j)
		if err != nil {
			return err
		}
		chi2, _, p, err := stats.ChiSquare(table)
		if err != nil {
			return err
		}
		ranks = append(ranks, ranked{name: a.Name, chi2: chi2, p: p})
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].chi2 > ranks[j].chi2 })
	fmt.Println("\npredictor screening (chi-square vs outcome):")
	for _, r := range ranks {
		marker := ""
		if r.p < 0.01 {
			marker = "  ** significant"
		}
		fmt.Printf("  %-12s chi2=%9.1f  p=%.4f%s\n", r.name, r.chi2, r.p, marker)
	}

	// 3. Rules from the pruned tree.
	train, test, err := cohort.Split(0.7)
	if err != nil {
		return err
	}
	model, err := tree.Build(train, tree.Config{Criterion: tree.GainRatio, MinLeaf: 10})
	if err != nil {
		return err
	}
	model.PrunePessimistic(0.25)
	correct := 0
	for i, row := range test.Rows {
		if model.Predict(row) == test.Class(i) {
			correct++
		}
	}
	fmt.Printf("\npruned tree: %d nodes, holdout accuracy %.1f%%\n",
		model.Size(), 100*float64(correct)/float64(test.NumRows()))

	classAttr, err := cohort.ClassAttribute()
	if err != nil {
		return err
	}
	rules := model.ExtractRules()
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Pure() != rules[j].Pure() {
			return rules[i].Pure()
		}
		return rules[i].Support > rules[j].Support
	})
	fmt.Println("decision rules (pure subsets first):")
	for i, r := range rules {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(rules)-8)
			break
		}
		fmt.Println("  ", r.Format(cohort.Attributes, classAttr))
	}
	return nil
}

// contingency builds the predictor-vs-class count table, binning numeric
// predictors into quartile-style bins.
func contingency(t *dataset.Table, j int) ([][]float64, error) {
	nClasses := t.NumClasses()
	valueOf := func(v float64) int { return int(v) }
	nVals := len(t.Attributes[j].Values)
	if t.Attributes[j].Kind == dataset.Numeric {
		d, err := dataset.FitEqualFrequency(t, j, 4)
		if err != nil {
			return nil, err
		}
		valueOf = d.Bin
		nVals = d.NumBins()
	}
	table := make([][]float64, nVals)
	for v := range table {
		table[v] = make([]float64, nClasses)
	}
	for i, row := range t.Rows {
		if dataset.IsMissing(row[j]) {
			continue
		}
		table[valueOf(row[j])][t.Class(i)]++
	}
	return table, nil
}
