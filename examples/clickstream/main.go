// Clickstream analysis: sequential-pattern mining over user sessions.
// Synthetic customer histories are mined with AprioriAll and GSP, the two
// are cross-checked, and the maximal navigation patterns are reported —
// the ICDE'95/EDBT'96 workflow on web-style data.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/seqmine"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 800 visitors, ~8 sessions each, pages drawn from 200 URLs with 30
	// recurring navigation patterns.
	raw, err := synth.Sequences(synth.SequenceConfig{
		NumCustomers:   800,
		AvgTxPerCust:   8,
		AvgTxSize:      3,
		AvgSeqPatLen:   4,
		AvgPatternSize: 1.5,
		NumSeqPatterns: 30,
		NumItemsets:    120,
		NumItems:       200,
		CorruptionMean: 0.4,
		CorruptionSD:   0.1,
		Seed:           303,
	})
	if err != nil {
		return err
	}
	visitors := seqmine.FromSynth(raw)
	const minSupport = 0.05
	fmt.Printf("%d visitors, minimum support %.0f%%\n\n", len(visitors), minSupport*100)

	results := map[string]*seqmine.Result{}
	for _, m := range []seqmine.Miner{&seqmine.AprioriAll{}, &seqmine.GSP{}} {
		start := time.Now()
		res, err := m.Mine(visitors, minSupport)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		candidates := 0
		for _, p := range res.Passes {
			candidates += p.Candidates
		}
		fmt.Printf("%-12s %8s  %5d frequent sequences, %6d candidates counted\n",
			m.Name(), elapsed.Round(time.Millisecond), res.NumFrequent(), candidates)
		results[m.Name()] = res
	}

	// The two miners must agree on the full pattern set.
	aa, gsp := results["AprioriAll"], results["GSP"]
	for _, sc := range aa.All() {
		if got, ok := gsp.Support(sc.Seq); !ok || got != sc.Count {
			return fmt.Errorf("disagreement on %v: AprioriAll %d, GSP %d (found %v)",
				sc.Seq, sc.Count, got, ok)
		}
	}
	fmt.Println("\nminers agree on every frequent sequence ✓")

	maximal := gsp.Maximal()
	sort.Slice(maximal, func(i, j int) bool {
		if len(maximal[i].Seq) != len(maximal[j].Seq) {
			return len(maximal[i].Seq) > len(maximal[j].Seq)
		}
		return maximal[i].Count > maximal[j].Count
	})
	fmt.Printf("\n%d maximal navigation patterns; longest:\n", len(maximal))
	for i, sc := range maximal {
		if i == 10 {
			break
		}
		fmt.Printf("  %s  (%.1f%% of visitors)\n", sc.Seq, 100*float64(sc.Count)/float64(len(visitors)))
	}
	return nil
}
