// Market-basket analysis: the tutorial's motivating retail scenario,
// driven through the public mining API. A synthetic store's transaction
// log is mined with every registered engine (verifying they agree
// byte-for-byte), then the analysis itself uses the default "Auto"
// dispatch — the probe that picks the expected-fastest engine (Apriori,
// bitset Eclat or FPGrowth) per workload — with the streamed variant
// emitting levels as they finish, before extracting high-lift cross-sell
// rules, the workflow of Agrawal & Srikant's evaluation.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/assoc"
	"repro/internal/synth"
	"repro/mining"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	// A season of baskets: 5000 transactions, ~12 items each, drawn from
	// 40 co-purchase patterns over a 300-product catalogue.
	raw, err := synth.Baskets(synth.BasketConfig{
		NumTransactions: 5000,
		AvgTxSize:       12,
		AvgPatternSize:  4,
		NumPatterns:     40,
		NumItems:        300,
		CorruptionMean:  0.35,
		CorruptionSD:    0.1,
		CorrelationMean: 0.5,
		Seed:            2024,
	})
	if err != nil {
		return err
	}
	rows := make([][]int, raw.Len())
	for i, tx := range raw.Transactions {
		rows[i] = tx
	}
	db, err := mining.NewDB(rows)
	if err != nil {
		return err
	}
	const minSupport = 0.02
	fmt.Printf("catalogue of %d products, %d baskets, minimum support %.0f%%\n\n",
		db.NumItems(), db.Len(), minSupport*100)

	// Every engine must find byte-identical frequent itemsets; time them all.
	var reference []byte
	fmt.Printf("%-16s%10s%12s\n", "algorithm", "time", "itemsets")
	for _, name := range mining.Algorithms() {
		start := time.Now()
		res, err := mining.Mine(ctx, db, mining.Algorithm(name), mining.MinSupport(minSupport))
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		if reference == nil {
			reference = res.Canonical()
		} else if string(res.Canonical()) != string(reference) {
			return fmt.Errorf("%s disagrees with the reference result", name)
		}
		fmt.Printf("%-16s%10s%12d\n", name, elapsed.Round(time.Millisecond), res.NumFrequent())
	}

	// The analysis itself uses the auto-selected fastest engine — the
	// facade's default. The internal dispatcher reports which engine the
	// workload probe picked (density, frequent-universe size).
	auto := &assoc.Auto{}
	if _, err := auto.Select(raw, minSupport); err != nil {
		return err
	}
	fmt.Printf("\nauto-selected engine: %s\n", auto.Selected())

	// Stream the mine level by level: a dashboard could render the pairs
	// while the long tail is still being counted.
	for level, err := range mining.MineStream(ctx, db, mining.MinSupport(minSupport)) {
		if err != nil {
			return err
		}
		fmt.Printf("  streamed level %d: %d itemsets\n", level.K, len(level.Itemsets))
	}

	// Candidate-pruning anatomy comes from Apriori specifically — it is
	// the one engine whose per-pass Candidates column is a real generated
	// candidate count (pattern growth never materialises candidates).
	anatomy, err := mining.Mine(ctx, db, mining.Algorithm("Apriori"), mining.MinSupport(minSupport))
	if err != nil {
		return err
	}
	fmt.Println("Apriori per-pass anatomy (candidates -> frequent):")
	for _, p := range anatomy.Passes() {
		fmt.Printf("  pass %d: %d -> %d\n", p.K, p.Candidates, p.Frequent)
	}

	// Cross-sell rules ranked by lift. Every engine's result is
	// byte-identical, so the Apriori anatomy result serves double duty.
	rules, err := anatomy.Rules(0.5)
	if err != nil {
		return err
	}
	best := rules
	if len(best) > 8 {
		// Rules sorts by confidence; re-rank the confident ones by lift
		// for the merchandising view.
		for i := 0; i < len(best); i++ {
			for j := i + 1; j < len(best); j++ {
				if best[j].Lift > best[i].Lift {
					best[i], best[j] = best[j], best[i]
				}
			}
		}
		best = best[:8]
	}
	fmt.Println("\ntop cross-sell rules by lift:")
	for _, r := range best {
		fmt.Println("  ", r)
	}
	return nil
}
