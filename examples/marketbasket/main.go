// Market-basket analysis: the tutorial's motivating retail scenario.
// A synthetic store's transaction log is mined for frequent itemsets with
// every algorithm in the suite (verifying they agree), then the analysis
// itself runs through assoc.Auto — the dispatch that probes the workload
// and picks the expected-fastest engine (Apriori, bitset Eclat or
// FPGrowth) — printing which engine was chosen before extracting
// high-lift cross-sell rules, the workflow of Agrawal & Srikant's
// evaluation.
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	"repro/internal/assoc"
	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A season of baskets: 5000 transactions, ~12 items each, drawn from
	// 40 co-purchase patterns over a 300-product catalogue.
	db, err := synth.Baskets(synth.BasketConfig{
		NumTransactions: 5000,
		AvgTxSize:       12,
		AvgPatternSize:  4,
		NumPatterns:     40,
		NumItems:        300,
		CorruptionMean:  0.35,
		CorruptionSD:    0.1,
		CorrelationMean: 0.5,
		Seed:            2024,
	})
	if err != nil {
		return err
	}
	const minSupport = 0.02
	fmt.Printf("catalogue of %d products, %d baskets, minimum support %.0f%%\n\n",
		db.NumItems(), db.Len(), minSupport*100)

	// Every miner must find the same frequent itemsets; time them all.
	var reference map[string]int
	fmt.Printf("%-16s%10s%12s\n", "algorithm", "time", "itemsets")
	for _, m := range core.Miners() {
		// Engines that own resources (the Distributed engine's in-process
		// transport goroutines) expose a Close; release them once timed.
		if c, ok := m.(io.Closer); ok {
			defer c.Close()
		}
		start := time.Now()
		res, err := m.Mine(db, minSupport)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		found := make(map[string]int, res.NumFrequent())
		for _, ic := range res.All() {
			found[ic.Items.Key()] = ic.Count
		}
		if reference == nil {
			reference = found
		} else if len(found) != len(reference) {
			return fmt.Errorf("%s disagrees: %d vs %d itemsets", m.Name(), len(found), len(reference))
		}
		fmt.Printf("%-16s%10s%12d\n", m.Name(), elapsed.Round(time.Millisecond), res.NumFrequent())
	}

	// The analysis itself uses the auto-selected fastest engine: Auto
	// probes the workload (density, frequent-universe size) and dispatches.
	auto := &assoc.Auto{}
	res, err := auto.Mine(db, minSupport)
	if err != nil {
		return err
	}
	fmt.Printf("\nauto-selected engine: %s\n", auto.Selected())

	// Candidate-pruning anatomy comes from Apriori specifically — it is
	// the one engine whose per-pass Candidates column is a real generated
	// candidate count (pattern growth never materialises candidates).
	anatomy, err := (&assoc.Apriori{}).Mine(db, minSupport)
	if err != nil {
		return err
	}
	fmt.Println("Apriori per-pass anatomy (candidates -> frequent):")
	for _, p := range anatomy.Passes {
		fmt.Printf("  pass %d: %d -> %d\n", p.K, p.Candidates, p.Frequent)
	}

	// Cross-sell rules ranked by lift.
	rules, err := assoc.GenerateRules(res, 0.5)
	if err != nil {
		return err
	}
	best := rules
	if len(best) > 8 {
		// GenerateRules sorts by confidence; re-rank the confident ones
		// by lift for the merchandising view.
		for i := 0; i < len(best); i++ {
			for j := i + 1; j < len(best); j++ {
				if best[j].Lift > best[i].Lift {
					best[i], best[j] = best[j], best[i]
				}
			}
		}
		best = best[:8]
	}
	fmt.Println("\ntop cross-sell rules by lift:")
	for _, r := range best {
		fmt.Println("  ", r)
	}
	return nil
}
