// Credit-risk workbench: the extension modules in one workflow. A loan
// portfolio (benchmark function F9: income, education and loan balance
// interact) is analysed four ways: quantitative association rules explain
// which attribute ranges co-occur with each outcome; PRISM produces a
// covering rule list; bagging and boosting are compared against single
// trees; and the silhouette coefficient picks k for a risk segmentation.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/ensemble"
	"repro/internal/quant"
	"repro/internal/rules"
	"repro/internal/synth"
	"repro/internal/tree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	portfolio, err := synth.Classify(synth.ClassifyConfig{
		NumRows: 1500, Function: 9, Noise: 0.05, Seed: 404,
	})
	if err != nil {
		return err
	}
	train, test, err := portfolio.Split(0.7)
	if err != nil {
		return err
	}
	fmt.Printf("loan portfolio: %d accounts (%d train / %d test)\n\n",
		portfolio.NumRows(), train.NumRows(), test.NumRows())

	// 1. Quantitative association rules: which ranges imply which group?
	qrules, _, err := quant.Mine(train, quant.Config{
		Bins: 4, MaxSupport: 0.4, SkipColumns: []int{synth.ColCar, synth.ColZipcode},
	}, 0.08, 0.85)
	if err != nil {
		return err
	}
	fmt.Printf("quantitative rules (conf >= 0.85): %d found; e.g.\n", len(qrules))
	shown := 0
	for _, r := range qrules {
		if len(r.Consequent) == 1 && containsGroup(r.Consequent[0]) {
			fmt.Println("  ", r)
			shown++
			if shown == 4 {
				break
			}
		}
	}

	// 2. PRISM covering rules.
	prism, err := rules.TrainPRISM(train, rules.PRISM{Bins: 6, MaxRules: 40})
	if err != nil {
		return err
	}
	fmt.Printf("\nPRISM: %d covering rules, holdout accuracy %.1f%%\n",
		len(prism.Rules), 100*accuracy(prism, test))

	// 3. Committees vs single trees.
	single, err := tree.Build(train, tree.Config{Criterion: tree.GainRatio, MinLeaf: 2})
	if err != nil {
		return err
	}
	single.PrunePessimistic(0.25)
	bag, err := (&ensemble.Bagging{Rounds: 15, Tree: tree.Config{Criterion: tree.GainRatio, MinLeaf: 2}, Seed: 1}).Train(train)
	if err != nil {
		return err
	}
	boost, err := (&ensemble.AdaBoost{Rounds: 30, MaxDepth: 2, Seed: 1}).Train(train)
	if err != nil {
		return err
	}
	fmt.Println("\nholdout accuracy:")
	fmt.Printf("  pruned tree   %.1f%%\n", 100*accuracy(single, test))
	fmt.Printf("  bagging(15)   %.1f%%\n", 100*accuracy(bag, test))
	fmt.Printf("  adaboost(30)  %.1f%%\n", 100*accuracy(boost, test))

	// 4. Risk segmentation: silhouette-guided choice of k over the
	// (salary, loan) plane.
	pts := make([][]float64, test.NumRows())
	for i, row := range test.Rows {
		pts[i] = []float64{row[synth.ColSalary] / 1000, row[synth.ColLoan] / 1000}
	}
	fmt.Println("\nsegmentation of (salary, loan) in k$, silhouette by k:")
	bestK, bestS := 0, -1.0
	for k := 2; k <= 6; k++ {
		res, err := (&cluster.KMeans{K: k, Seed: 3}).Run(pts)
		if err != nil {
			return err
		}
		s, err := cluster.Silhouette(pts, res.Assignments)
		if err != nil {
			return err
		}
		fmt.Printf("  k=%d: %.3f\n", k, s)
		if s > bestS {
			bestK, bestS = k, s
		}
	}
	fmt.Printf("silhouette prefers k=%d\n", bestK)
	return nil
}

func containsGroup(cond string) bool {
	return len(cond) >= 5 && cond[:5] == "group"
}

func accuracy(clf interface{ Predict([]float64) int }, tbl *dataset.Table) float64 {
	correct := 0
	for i, row := range tbl.Rows {
		if clf.Predict(row) == tbl.Class(i) {
			correct++
		}
	}
	return float64(correct) / float64(tbl.NumRows())
}
