// Customer segmentation: the clustering walk-through. A synthetic customer
// base with known segments is clustered by the k-medoid family and BIRCH;
// a non-convex engagement pattern then shows where density-based
// clustering is required — the KDD'96 argument.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Four spending/frequency segments.
	customers, err := synth.GaussianMixture(synth.GaussianConfig{
		NumPoints: 800, NumCluster: 4, Dims: 2, Spread: 1.2, Separation: 70, Seed: 7,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d customers, 4 true segments\n\n", len(customers.X))
	fmt.Printf("%-10s%10s%12s%14s\n", "method", "time", "cost", "Rand index")

	type method struct {
		name string
		run  func() (*cluster.Result, error)
	}
	methods := []method{
		{"k-means", func() (*cluster.Result, error) { return (&cluster.KMeans{K: 4, Seed: 1}).Run(customers.X) }},
		{"PAM", func() (*cluster.Result, error) { return (&cluster.PAM{K: 4}).Run(customers.X) }},
		{"CLARA", func() (*cluster.Result, error) { return (&cluster.CLARA{K: 4, Seed: 1}).Run(customers.X) }},
		{"CLARANS", func() (*cluster.Result, error) { return (&cluster.CLARANS{K: 4, Seed: 1}).Run(customers.X) }},
		{"BIRCH", func() (*cluster.Result, error) { return (&cluster.BIRCH{K: 4, Seed: 1}).Run(customers.X) }},
	}
	for _, m := range methods {
		start := time.Now()
		res, err := m.run()
		if err != nil {
			return err
		}
		ri, err := cluster.RandIndex(res.Assignments, customers.Labels)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s%10s%12.1f%14.3f\n", m.name, time.Since(start).Round(time.Millisecond), res.Cost, ri)
	}

	// Hierarchical view: dendrogram cut at 2..6 segments.
	dend, err := (&cluster.Hierarchical{Linkage: cluster.WardLinkage}).Run(customers.X)
	if err != nil {
		return err
	}
	fmt.Println("\nWard dendrogram cuts:")
	for k := 2; k <= 6; k++ {
		labels, err := dend.CutK(k)
		if err != nil {
			return err
		}
		ri, err := cluster.RandIndex(labels, customers.Labels)
		if err != nil {
			return err
		}
		fmt.Printf("  k=%d: Rand index %.3f\n", k, ri)
	}

	// Engagement rings: recency/frequency orbits no centroid method can
	// separate.
	rings, err := synth.Shapes(synth.ShapeConfig{
		Kind: synth.Rings, NumPoints: 600, Jitter: 0.04, NoiseFrac: 0.05, Seed: 8,
	})
	if err != nil {
		return err
	}
	km, err := (&cluster.KMeans{K: 2, Seed: 1}).Run(rings.X)
	if err != nil {
		return err
	}
	db, err := (&cluster.DBSCAN{Eps: 0.4, MinPts: 5, UseIndex: true}).Run(rings.X)
	if err != nil {
		return err
	}
	kmRI, err := cluster.RandIndex(km.Assignments, rings.Labels)
	if err != nil {
		return err
	}
	dbRI, err := cluster.RandIndex(db.Assignments, rings.Labels)
	if err != nil {
		return err
	}
	noise := 0
	for _, a := range db.Assignments {
		if a == cluster.Noise {
			noise++
		}
	}
	fmt.Printf("\nring-shaped segments: k-means RI %.3f, DBSCAN RI %.3f (%d flagged as noise)\n",
		kmRI, dbRI, noise)
	return nil
}
