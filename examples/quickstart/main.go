// Quickstart: the three technique families on synthetic data in ~40 lines
// each — association rules through the public mining API (one-shot mine,
// then a stateful session absorbing updates), k-means on points, and a
// decision tree with cross-validation on a labelled table.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/transactions"
	"repro/mining"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// toMiningDB adapts a synthetic generator database to the public API.
func toMiningDB(db *transactions.DB) (*mining.DB, error) {
	rows := make([][]int, db.Len())
	for i, tx := range db.Transactions {
		rows[i] = tx
	}
	return mining.NewDB(rows)
}

func run() error {
	ctx := context.Background()

	// --- Association rules (public mining API) ------------------------
	raw, err := synth.Baskets(synth.TxI(8, 3, 2000, 1))
	if err != nil {
		return err
	}
	db, err := toMiningDB(raw)
	if err != nil {
		return err
	}
	res, err := mining.Mine(ctx, db,
		mining.MinSupport(0.005),
		mining.Workers(0), // 0 = GOMAXPROCS; results are identical at any worker count
	)
	if err != nil {
		return err
	}
	rules, err := res.Rules(0.3)
	if err != nil {
		return err
	}
	fmt.Printf("association: %d frequent itemsets, %d rules; strongest:\n", res.NumFrequent(), len(rules))
	for i, r := range rules {
		if i == 3 {
			break
		}
		fmt.Println("  ", r)
	}

	// The stateful handle: a session keeps the result current as data
	// arrives, re-counting only the shards each update dirties.
	s, err := mining.NewSession(db, mining.MinSupport(0.005))
	if err != nil {
		return err
	}
	defer s.Close()
	if _, err := s.Mine(ctx); err != nil {
		return err
	}
	for i := 0; i < 50; i++ {
		if err := s.Append(i%5, i%7, i%11); err != nil {
			return err
		}
	}
	upd, stats, err := s.Maintain(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("session: +50 transactions -> %d frequent; re-counted %d/%d shards\n",
		upd.NumFrequent(), stats.DirtyShards, stats.NumShards)

	// --- Clustering ---------------------------------------------------
	pts, err := synth.GaussianMixture(synth.GaussianConfig{
		NumPoints: 600, NumCluster: 4, Dims: 2, Spread: 1, Separation: 60, Seed: 2,
	})
	if err != nil {
		return err
	}
	km := &cluster.KMeans{K: 4, Seed: 3}
	cres, err := km.Run(pts.X)
	if err != nil {
		return err
	}
	ri, err := cluster.RandIndex(cres.Assignments, pts.Labels)
	if err != nil {
		return err
	}
	fmt.Printf("\nclustering: k-means found %d clusters, SSE %.1f, Rand index vs truth %.3f\n",
		cres.NumClusters(), cres.Cost, ri)

	// --- Classification -----------------------------------------------
	tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: 1000, Function: 3, Seed: 4})
	if err != nil {
		return err
	}
	comps, err := core.CompareClassifiers(tbl, core.Classifiers(), 5, 5)
	if err != nil {
		return err
	}
	fmt.Println("\nclassification (5-fold CV accuracy):")
	for _, c := range comps {
		fmt.Printf("  %-14s %.1f%%\n", c.Name, c.Accuracy*100)
	}
	return nil
}
