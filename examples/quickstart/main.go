// Quickstart: the three technique families on synthetic data in ~40 lines
// each — association rules on baskets, k-means on points, and a decision
// tree with cross-validation on a labelled table.
package main

import (
	"fmt"
	"log"

	"repro/internal/assoc"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Association rules -------------------------------------------
	db, err := synth.Baskets(synth.TxI(8, 3, 2000, 1))
	if err != nil {
		return err
	}
	res, err := (&assoc.Apriori{}).Mine(db, 0.005)
	if err != nil {
		return err
	}
	rules, err := assoc.GenerateRules(res, 0.3)
	if err != nil {
		return err
	}
	fmt.Printf("association: %d frequent itemsets, %d rules; strongest:\n", res.NumFrequent(), len(rules))
	for i, r := range rules {
		if i == 3 {
			break
		}
		fmt.Println("  ", r)
	}

	// --- Clustering ---------------------------------------------------
	pts, err := synth.GaussianMixture(synth.GaussianConfig{
		NumPoints: 600, NumCluster: 4, Dims: 2, Spread: 1, Separation: 60, Seed: 2,
	})
	if err != nil {
		return err
	}
	km := &cluster.KMeans{K: 4, Seed: 3}
	cres, err := km.Run(pts.X)
	if err != nil {
		return err
	}
	ri, err := cluster.RandIndex(cres.Assignments, pts.Labels)
	if err != nil {
		return err
	}
	fmt.Printf("\nclustering: k-means found %d clusters, SSE %.1f, Rand index vs truth %.3f\n",
		cres.NumClusters(), cres.Cost, ri)

	// --- Classification -----------------------------------------------
	tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: 1000, Function: 3, Seed: 4})
	if err != nil {
		return err
	}
	comps, err := core.CompareClassifiers(tbl, core.Classifiers(), 5, 5)
	if err != nil {
		return err
	}
	fmt.Println("\nclassification (5-fold CV accuracy):")
	for _, c := range comps {
		fmt.Printf("  %-14s %.1f%%\n", c.Name, c.Accuracy*100)
	}
	return nil
}
