package mining

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"repro/internal/assoc"
	"repro/internal/synth"
	"repro/internal/transactions"
)

// testData returns a synthetic basket workload both as the internal DB
// (for the old call paths) and the public wrapper (for the facade).
func testData(t *testing.T, numTx int, seed int64) (*DB, *transactions.DB) {
	t.Helper()
	tdb, err := synth.Baskets(synth.TxI(8, 3, numTx, seed))
	if err != nil {
		t.Fatal(err)
	}
	return &DB{db: tdb}, tdb
}

// TestMineMatchesInternalCallPaths is the facade's byte-identity
// contract: for every registered engine, mining through the public API
// produces a Canonical encoding identical to the pre-facade internal call
// path, at workers 1 and 4.
func TestMineMatchesInternalCallPaths(t *testing.T) {
	db, tdb := testData(t, 600, 7)
	const minSup = 0.01
	for _, name := range Algorithms() {
		for _, workers := range []int{1, 4} {
			old, err := internalMine(name, tdb, minSup, workers)
			if err != nil {
				t.Fatalf("%s internal: %v", name, err)
			}
			got, err := Mine(context.Background(), db,
				Algorithm(name), MinSupport(minSup), Workers(workers))
			if err != nil {
				t.Fatalf("%s facade: %v", name, err)
			}
			if string(got.Canonical()) != string(old.Canonical()) {
				t.Errorf("%s workers=%d: facade result differs from internal call path", name, workers)
			}
		}
	}
}

// internalMine runs the pre-facade call path: a registry miner configured
// by struct fields / SetWorkers, closed if it owns resources.
func internalMine(name string, db *transactions.DB, minSup float64, workers int) (*assoc.Result, error) {
	for _, m := range assoc.Registered() {
		if m.Name() != name {
			continue
		}
		if ws, ok := m.(assoc.WorkerSetter); ok && workers != 1 {
			ws.SetWorkers(workers)
		}
		if c, ok := m.(interface{ Close() error }); ok {
			defer c.Close()
		}
		return m.Mine(db, minSup)
	}
	return nil, errors.New("no such miner: " + name)
}

// TestMineWithTransportMatchesLocal pins the Transport option: the
// distributed engine over an in-process gob transport is byte-identical
// to the local engines for both counting strategies.
func TestMineWithTransportMatchesLocal(t *testing.T) {
	db, tdb := testData(t, 400, 11)
	const minSup = 0.01
	want, err := (&assoc.Apriori{}).Mine(tdb, minSup)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"Apriori", "FPGrowth", "Auto"} {
		got, err := Mine(context.Background(), db,
			Algorithm(algo), MinSupport(minSup), Transport(LocalTransport(2)))
		if err != nil {
			t.Fatalf("%s over transport: %v", algo, err)
		}
		if string(got.Canonical()) != string(want.Canonical()) {
			t.Errorf("%s over transport differs from local Apriori", algo)
		}
	}
	// Engines without a distributed form are rejected before any shipping.
	if _, err := Mine(context.Background(), db,
		Algorithm("Eclat"), Transport(LocalTransport(2))); !errors.Is(err, ErrBadOption) {
		t.Errorf("Eclat over transport: err = %v, want ErrBadOption", err)
	}
}

// TestMineStreamMatchesMine pins the streaming contract: the concatenated
// levels equal the one-shot result, for a natively streaming engine and
// for an assemble-at-the-end engine.
func TestMineStreamMatchesMine(t *testing.T) {
	db, _ := testData(t, 500, 3)
	const minSup = 0.01
	for _, algo := range []string{"Apriori", "FPGrowth", "Eclat", "Sampling"} {
		want, err := Mine(context.Background(), db, Algorithm(algo), MinSupport(minSup))
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		nextK := 1
		for level, err := range MineStream(context.Background(), db, Algorithm(algo), MinSupport(minSup)) {
			if err != nil {
				t.Fatalf("%s stream: %v", algo, err)
			}
			if level.K != nextK {
				t.Fatalf("%s stream: level %d out of order (want %d)", algo, level.K, nextK)
			}
			nextK++
			for _, ic := range level.Itemsets {
				got = append(got, transactions.NewItemset(ic.Items...).Key()...)
				got = append(got, ':')
				got = append(got, []byte(itoa(ic.Count))...)
				got = append(got, '\n')
			}
		}
		if string(got) != string(want.Canonical()) {
			t.Errorf("%s: streamed levels differ from Mine result", algo)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestMineStreamEarlyBreak pins that abandoning the stream cancels the
// mine and releases its goroutines.
func TestMineStreamEarlyBreak(t *testing.T) {
	db, _ := testData(t, 500, 5)
	before := runtime.NumGoroutine()
	for level, err := range MineStream(context.Background(), db, Algorithm("Apriori"), MinSupport(0.005)) {
		if err != nil {
			t.Fatal(err)
		}
		if level.K >= 1 {
			break
		}
	}
	waitForGoroutines(t, before)
}

// TestSessionMatchesFromScratch drives a session through appends,
// deletes and maintains, checking every maintained result is
// byte-identical to a one-shot Mine over the store's current contents.
func TestSessionMatchesFromScratch(t *testing.T) {
	db, tdb := testData(t, 300, 9)
	const minSup = 0.02
	s, err := NewSession(db, MinSupport(minSup), ShardCap(64), Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Mirror of the store's live contents (as multisets; delete removes
	// the transaction DeleteAt reports, so order differences don't matter).
	mirror := make([][]int, 0, tdb.Len())
	for _, tx := range tdb.Transactions {
		mirror = append(mirror, tx)
	}
	check := func(step string) {
		t.Helper()
		res, err := s.Mine(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		snap, err := NewDB(mirror)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Mine(context.Background(), snap, Algorithm("Apriori"), MinSupport(minSup))
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		if string(res.Canonical()) != string(want.Canonical()) {
			t.Fatalf("%s: maintained result differs from a from-scratch run", step)
		}
	}

	check("attach")
	for i := 0; i < 30; i++ {
		if err := s.Append(i%7, i%11, 40+i%3); err != nil {
			t.Fatal(err)
		}
		mirror = append(mirror, []int{i % 7, i % 11, 40 + i%3})
	}
	check("after appends")
	for i := 0; i < 20; i++ {
		tx, err := s.DeleteAt(i * 3 % s.Len())
		if err != nil {
			t.Fatal(err)
		}
		for j, row := range mirror {
			if transactions.NewItemset(row...).Equal(transactions.NewItemset(tx...)) {
				mirror = append(mirror[:j], mirror[j+1:]...)
				break
			}
		}
	}
	check("after deletes")

	// Maintain surfaces the dirty-shard stats.
	if err := s.Append(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	mirror = append(mirror, []int{1, 2, 3})
	_, stats, err := s.Maintain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FullRun && stats.DirtyShards == 0 {
		t.Errorf("stats = %+v, want dirty shards or a full run after an append", stats)
	}
	check("after maintain")

	if _, err := s.Rules(0.5); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Append after Close: err = %v, want ErrClosed", err)
	}
	if _, err := s.Mine(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("Mine after Close: err = %v, want ErrClosed", err)
	}
}

// TestSessionWithDistributedBase pins the Transport composition: a
// session whose full runs go through the distributed engine produces
// byte-identical results and still maintains incrementally.
func TestSessionWithDistributedBase(t *testing.T) {
	db, _ := testData(t, 200, 13)
	const minSup = 0.02
	s, err := NewSession(db, MinSupport(minSup), ShardCap(64), Transport(LocalTransport(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Mine(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Mine(context.Background(), db, Algorithm("Apriori"), MinSupport(minSup))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Canonical()) != string(want.Canonical()) {
		t.Fatal("distributed-base session differs from local mine")
	}
	if err := s.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Maintain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDegenerateInputs pins the facade's degenerate contract: the
// sentinel error plus a usable empty Result, like the engines themselves.
func TestDegenerateInputs(t *testing.T) {
	db, _ := testData(t, 50, 1)
	empty, err := NewDB(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := Mine(context.Background(), empty); !errors.Is(err, ErrEmptyDB) || res == nil || res.NumFrequent() != 0 {
		t.Errorf("empty db: res=%v err=%v, want empty result + ErrEmptyDB", res, err)
	}
	if res, err := Mine(context.Background(), nil); !errors.Is(err, ErrEmptyDB) || res == nil {
		t.Errorf("nil db: res=%v err=%v, want empty result + ErrEmptyDB", res, err)
	}
	if res, err := Mine(context.Background(), db, MinSupport(1.5)); !errors.Is(err, ErrBadSupport) || res == nil {
		t.Errorf("bad support: res=%v err=%v, want empty result + ErrBadSupport", res, err)
	}
}

// TestOptionValidation pins the option-level errors and defaults.
func TestOptionValidation(t *testing.T) {
	db, _ := testData(t, 50, 1)
	if _, err := Mine(context.Background(), db, Algorithm("NoSuch")); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("unknown algorithm: err = %v", err)
	}
	if _, err := Mine(context.Background(), db, Workers(-1)); !errors.Is(err, ErrBadOption) {
		t.Errorf("negative workers: err = %v", err)
	}
	if _, err := NewSession(db, ShardCap(-1)); !errors.Is(err, ErrBadOption) {
		t.Errorf("negative shard cap: err = %v", err)
	}
	if _, err := NewSession(db, TrackSlack(1.5)); !errors.Is(err, ErrBadOption) {
		t.Errorf("out-of-range track slack: err = %v", err)
	}
	// Workers(0) resolves to GOMAXPROCS; results stay identical to serial.
	a, err := Mine(context.Background(), db, Workers(0), Algorithm("Apriori"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(context.Background(), db, Workers(1), Algorithm("Apriori"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Canonical()) != string(b.Canonical()) {
		t.Error("Workers(0) result differs from serial")
	}
	// Defaults: MinSupport 0.01, Algorithm Auto — equivalent to Apriori
	// at the same support (all engines agree).
	c, err := Mine(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Mine(context.Background(), db, Algorithm("Apriori"), MinSupport(DefaultMinSupport))
	if err != nil {
		t.Fatal(err)
	}
	if string(c.Canonical()) != string(d.Canonical()) {
		t.Error("default options differ from Auto at DefaultMinSupport")
	}
}

// TestProgressEvents pins the Progress option: one event per recorded
// pass, in pass order.
func TestProgressEvents(t *testing.T) {
	db, _ := testData(t, 200, 17)
	var events []PassStat
	res, err := Mine(context.Background(), db,
		Algorithm("Apriori"), MinSupport(0.01), Progress(func(p PassStat) { events = append(events, p) }))
	if err != nil {
		t.Fatal(err)
	}
	passes := res.Passes()
	if len(events) != len(passes) {
		t.Fatalf("got %d progress events, want %d", len(events), len(passes))
	}
	for i := range events {
		if events[i] != passes[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], passes[i])
		}
	}
}

// TestResultAccessors sanity-checks the wrapper accessors against the
// underlying result.
func TestResultAccessors(t *testing.T) {
	db, _ := testData(t, 200, 19)
	res, err := Mine(context.Background(), db, Algorithm("Apriori"), MinSupport(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTx() != 200 {
		t.Errorf("NumTx = %d", res.NumTx())
	}
	total := 0
	for k := 1; k <= res.MaxLen(); k++ {
		level := res.Level(k)
		total += len(level)
		for _, ic := range level {
			if got, ok := res.Support(ic.Items...); !ok || got != ic.Count {
				t.Errorf("Support(%v) = %d,%v, want %d", ic.Items, got, ok, ic.Count)
			}
		}
	}
	if total != res.NumFrequent() || total != len(res.Itemsets()) {
		t.Errorf("levels sum %d, NumFrequent %d, Itemsets %d", total, res.NumFrequent(), len(res.Itemsets()))
	}
	if res.Level(0) != nil || res.Level(res.MaxLen()+1) != nil {
		t.Error("out-of-range Level not nil")
	}
	rules, err := res.Rules(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Confidence < 0.5 {
			t.Errorf("rule %v below confidence", r)
		}
	}
	if _, err := res.Rules(0); !errors.Is(err, ErrBadConfidence) {
		t.Errorf("Rules(0): err = %v", err)
	}
}
