package mining_test

// The API-stability gate of the public mining package: every exported
// symbol (consts, vars, funcs, types, their exported fields and methods)
// is rendered to one line each and compared against testdata/api.golden.
// A deliberate surface change regenerates the golden file with
//
//	UPDATE_API=1 go test ./mining -run TestAPIGolden
//
// so accidental breaks — a renamed option, a method signature drift, a
// field that stopped being exported — fail CI instead of shipping.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// exportedAPI renders the package's exported surface as sorted lines.
func exportedAPI(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	exprString := func(e ast.Expr) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, e); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					sig := strings.TrimPrefix(exprString(d.Type), "func")
					if d.Recv != nil {
						recv := exprString(d.Recv.List[0].Type)
						base := strings.TrimPrefix(recv, "*")
						if !token.IsExported(base) {
							continue
						}
						add("method (%s) %s%s", recv, d.Name.Name, sig)
					} else {
						add("func %s%s", d.Name.Name, sig)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.ValueSpec:
							kind := "var"
							if d.Tok == token.CONST {
								kind = "const"
							}
							for _, name := range s.Names {
								if name.IsExported() {
									add("%s %s", kind, name.Name)
								}
							}
						case *ast.TypeSpec:
							if !s.Name.IsExported() {
								continue
							}
							switch typ := s.Type.(type) {
							case *ast.StructType:
								add("type %s struct", s.Name.Name)
								for _, f := range typ.Fields.List {
									for _, fn := range f.Names {
										if fn.IsExported() {
											add("field %s.%s %s", s.Name.Name, fn.Name, exprString(f.Type))
										}
									}
								}
							case *ast.InterfaceType:
								add("type %s interface", s.Name.Name)
								for _, m := range typ.Methods.List {
									for _, mn := range m.Names {
										if mn.IsExported() {
											sig := strings.TrimPrefix(exprString(m.Type), "func")
											add("ifacemethod %s.%s%s", s.Name.Name, mn.Name, sig)
										}
									}
								}
							default:
								add("type %s %s", s.Name.Name, exprString(s.Type))
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

func TestAPIGolden(t *testing.T) {
	got := strings.Join(exportedAPI(t, "."), "\n") + "\n"
	golden := filepath.Join("testdata", "api.golden")
	if os.Getenv("UPDATE_API") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run UPDATE_API=1 go test ./mining -run TestAPIGolden): %v", err)
	}
	if got != string(want) {
		t.Errorf("public API surface changed.\n--- want (testdata/api.golden)\n+++ got\n%s\n"+
			"If the change is intentional, regenerate with: UPDATE_API=1 go test ./mining -run TestAPIGolden",
			diffLines(string(want), got))
	}
}

// diffLines is a minimal line diff: lines only in want are prefixed with
// '-', lines only in got with '+'.
func diffLines(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var out []string
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			out = append(out, "- "+l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			out = append(out, "+ "+l)
		}
	}
	return strings.Join(out, "\n")
}
