// Package mining is the public, versioned frequent-itemset mining API of
// this module — the single way in to the twelve engines the internal
// packages implement (the level-wise family AIS/SETM/Apriori/AprioriTid/
// AprioriHybrid/DHP, the two-scan Partition, vertical Eclat, Toivonen
// Sampling, pattern-growth FPGrowth, the workload-probing Auto dispatch,
// and the coordinator/worker Distributed backend).
//
// # One-shot mining
//
// Mine runs one engine over an immutable DB under a context:
//
//	db, _ := mining.ReadBasket(f)
//	res, err := mining.Mine(ctx, db,
//		mining.MinSupport(0.01),
//		mining.Workers(0),              // 0 = GOMAXPROCS
//		mining.Algorithm("FPGrowth"),
//	)
//
// Every engine produces byte-identical results on the same input — the
// Canonical encoding is the contract the test suite pins — so Algorithm
// and Workers move only wall-clock time, never answers. Cancelling ctx
// aborts the hot loops promptly (within one counting stride or one pass
// fan-out), returns context.Canceled, and leaks no goroutines.
//
// MineStream is Mine with per-level delivery via iter.Seq2, so a server
// can emit short frequent itemsets while long ones are still being
// counted. The concatenated stream is byte-identical to Mine's levels.
//
// # Stateful sessions
//
// Session owns an updatable sharded store and keeps its mined result
// current under appends and deletes: Maintain re-counts only the shards an
// update dirtied (the FUP-style incremental maintainer), falling back to a
// full re-mine only when the maintained frequent set's negative border is
// crossed. Results stay byte-identical to a from-scratch run at every
// step. With Transport configured the session's full runs ship only dirty
// shards to the distributed workers, composing the incremental and
// distributed backends.
//
// # Options and defaults
//
// All knobs are functional options, shared by Mine, MineStream and
// NewSession. Zero values and omitted options mean:
//
//	MinSupport   0.01 (DefaultMinSupport)
//	Algorithm    "Auto" (DefaultAlgorithm): probe the workload, dispatch
//	Workers      1 (serial); Workers(0) resolves to runtime.GOMAXPROCS
//	Transport    none (in-process mining)
//	Progress     none
//	ShardCap     1024 transactions per session shard
//	TrackSlack   0.8 (sessions track candidates at 0.8x the support)
//
// The defaults are pinned by the cross-engine defaults test in
// internal/assoc and the option tests here.
package mining

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/assoc"
	"repro/internal/transactions"
)

// Errors returned by the package. ErrBadSupport, ErrEmptyDB and
// ErrBadConfidence are the engines' own sentinels re-exported, so
// errors.Is works across the facade.
var (
	// ErrBadSupport reports a minimum support outside (0, 1].
	ErrBadSupport = assoc.ErrBadSupport
	// ErrEmptyDB reports mining over no transactions.
	ErrEmptyDB = assoc.ErrEmptyDB
	// ErrBadConfidence reports a minimum confidence outside (0, 1].
	ErrBadConfidence = assoc.ErrBadConfidence
	// ErrUnknownAlgorithm reports an Algorithm name not in Algorithms().
	ErrUnknownAlgorithm = errors.New("mining: unknown algorithm")
	// ErrBadOption reports an invalid option value.
	ErrBadOption = errors.New("mining: invalid option")
	// ErrClosed reports use of a closed Session.
	ErrClosed = errors.New("mining: session is closed")
)

// DB is an immutable transaction database: one sorted itemset of
// non-negative item ids per transaction. Build one with NewDB or
// ReadBasket and mine it with Mine or MineStream; for a database that
// changes over time, use a Session instead.
type DB struct {
	db *transactions.DB
}

// NewDB builds a database from one transaction per row. Items are
// deduplicated and sorted; negative ids are rejected.
func NewDB(rows [][]int) (*DB, error) {
	db := transactions.NewDB()
	for i, tx := range rows {
		if err := db.Add(tx...); err != nil {
			return nil, fmt.Errorf("mining: row %d: %w", i, err)
		}
	}
	return &DB{db: db}, nil
}

// ReadBasket parses the whitespace-separated basket format (one
// transaction of item ids per line, as cmd/dmgen emits).
func ReadBasket(r io.Reader) (*DB, error) {
	db, err := transactions.ReadBasket(r)
	if err != nil {
		return nil, err
	}
	return &DB{db: db}, nil
}

// Len returns the number of transactions.
func (d *DB) Len() int {
	if d == nil {
		return 0
	}
	return d.db.Len()
}

// NumItems returns 1 + the largest item id in the database.
func (d *DB) NumItems() int {
	if d == nil {
		return 0
	}
	return d.db.NumItems()
}

// Rows returns the database's transactions as one row of sorted,
// deduplicated item ids per transaction, in live order. The rows alias
// the store — treat them as read-only. Serving tiers use this to
// snapshot a Session's store for durable persistence.
//
//lint:ignore invcheck/ctxdiscipline Rows is an O(n) header-copying accessor, not a counting hot loop; there is no scan to cancel and snapshotting must not fail mid-copy
func (d *DB) Rows() [][]int {
	if d == nil {
		return nil
	}
	rows := make([][]int, len(d.db.Transactions))
	for i, tx := range d.db.Transactions {
		rows[i] = tx
	}
	return rows
}

// unwrap returns the internal database (nil for a nil DB, which the
// engines report as ErrEmptyDB).
func (d *DB) unwrap() *transactions.DB {
	if d == nil {
		return nil
	}
	return d.db
}

// ItemsetCount pairs a frequent itemset (sorted item ids) with its
// absolute support count.
type ItemsetCount struct {
	Items []int
	Count int
}

// PassStat records the work of one counting pass: the itemset length K,
// how many candidates were counted, and how many met minimum support.
// Candidate-free engines mirror the frequent count into Candidates so
// pass tables stay comparable across algorithms.
type PassStat struct {
	K          int
	Candidates int
	Frequent   int
	// Degraded marks a pass the distributed engine served locally after
	// losing every worker (see the Faults and Retry options): the counts
	// are still exact, but nothing ran remotely. Always false for local
	// engines.
	Degraded bool
}

// Rule is an association rule Antecedent => Consequent. Support is the
// absolute support of the union, Confidence is support(union)/
// support(antecedent), and Lift is confidence over the consequent's
// relative support.
type Rule struct {
	Antecedent []int
	Consequent []int
	Support    int
	Confidence float64
	Lift       float64
}

// String renders the rule as "[a] => [b] (sup=…, conf=…, lift=…)".
func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup=%d, conf=%.3f, lift=%.3f)",
		r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift)
}

// Result holds the frequent itemsets of one mining run (or one maintained
// Session state), grouped into levels by itemset length. It wraps the
// engines' result representation directly, which is what makes Canonical
// byte-identical to the internal call paths by construction.
type Result struct {
	res *assoc.Result
}

// wrapResult adapts an internal result; nil stays nil.
func wrapResult(r *assoc.Result) *Result {
	if r == nil {
		return nil
	}
	return &Result{res: r}
}

// convertLevel adapts one internal level; the item slices are shared, not
// copied — treat them as read-only.
func convertLevel(level []assoc.ItemsetCount) []ItemsetCount {
	out := make([]ItemsetCount, len(level))
	for i, ic := range level {
		out[i] = ItemsetCount{Items: ic.Items, Count: ic.Count}
	}
	return out
}

// NumTx returns the number of transactions mined.
func (r *Result) NumTx() int { return r.res.NumTx }

// MinCount returns the absolute minimum support count used.
func (r *Result) MinCount() int { return r.res.MinCount }

// NumFrequent returns the total number of frequent itemsets.
func (r *Result) NumFrequent() int { return r.res.NumFrequent() }

// MaxLen returns the length of the longest frequent itemset.
func (r *Result) MaxLen() int { return r.res.MaxLevel() }

// Level returns the frequent k-itemsets in lexicographic order (nil when
// k is out of range).
func (r *Result) Level(k int) []ItemsetCount {
	if k < 1 || k > len(r.res.Levels) {
		return nil
	}
	return convertLevel(r.res.Levels[k-1])
}

// Itemsets returns every frequent itemset across levels, in level then
// lexicographic order.
func (r *Result) Itemsets() []ItemsetCount {
	return convertLevel(r.res.All())
}

// Support returns the absolute support of the given itemset if it is
// frequent. Items may be unsorted; duplicates are ignored.
func (r *Result) Support(items ...int) (int, bool) {
	return r.res.Support(transactions.NewItemset(items...))
}

// Passes returns the per-pass work stats in pass order.
func (r *Result) Passes() []PassStat {
	out := make([]PassStat, len(r.res.Passes))
	for i, p := range r.res.Passes {
		out[i] = PassStat(p)
	}
	return out
}

// Canonical returns the deterministic byte encoding of the frequent
// levels (one "items:count" line per itemset, in level then lexicographic
// order). Two results encode identically iff they found the same itemsets
// with the same supports — the byte-identity contract every engine, the
// incremental maintainer and the distributed backend are tested against.
func (r *Result) Canonical() []byte { return r.res.Canonical() }

// Rules derives all association rules meeting minConfidence from the
// frequent itemsets, sorted by descending confidence, then support, then
// antecedent order.
func (r *Result) Rules(minConfidence float64) ([]Rule, error) {
	rules, err := assoc.GenerateRules(r.res, minConfidence)
	if err != nil {
		return nil, err
	}
	out := make([]Rule, len(rules))
	for i, rule := range rules {
		out[i] = Rule{
			Antecedent: rule.Antecedent,
			Consequent: rule.Consequent,
			Support:    rule.Support,
			Confidence: rule.Confidence,
			Lift:       rule.Lift,
		}
	}
	return out, nil
}
