package mining

import (
	"context"
	"iter"
	"sync"

	"repro/internal/assoc"
)

// Mine finds all itemsets with relative support >= the MinSupport option
// over db, using the engine the Algorithm option selects. It blocks until
// the result is complete, ctx is cancelled (returning ctx.Err() promptly,
// with no goroutines left behind), or the input is degenerate — an empty
// db or an out-of-range support returns the usual sentinel error together
// with a usable empty Result, exactly like the internal call paths.
func Mine(ctx context.Context, db *DB, opts ...Option) (*Result, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	m, closer, err := cfg.buildMiner()
	if err != nil {
		return nil, err
	}
	if closer != nil {
		defer closer.Close()
	}
	if hook := cfg.passHook(); hook != nil {
		if po, ok := m.(assoc.PassObserver); ok {
			po.SetPassHook(hook)
		}
	}
	res, err := assoc.MineContext(ctx, m, db.unwrap(), cfg.minSupport)
	return wrapResult(res), err
}

// Level is one streamed result level: the frequent K-itemsets in
// lexicographic order, exactly the slice Result.Level(K) would return.
type Level struct {
	K        int
	Itemsets []ItemsetCount
}

// MineStream is Mine with incremental delivery: the returned sequence
// yields each completed level (K = 1, 2, ...) as soon as the engine
// finalises it, so a consumer can act on short itemsets while longer ones
// are still being counted. The engine blocks while the consumer holds a
// level — natural backpressure — and breaking out of the loop cancels the
// rest of the mine and releases every goroutine.
//
// Streaming granularity is engine-dependent: the level-wise engines yield
// per completed pass, while engines that assemble levels at the end
// (FPGrowth, Eclat, Sampling) yield everything once mining finishes. The
// concatenation of the yielded levels is always byte-identical to Mine's
// result. Errors — including ctx cancellation and the degenerate-input
// sentinels — arrive as the final yielded element with a zero Level.
func MineStream(ctx context.Context, db *DB, opts ...Option) iter.Seq2[Level, error] {
	return func(yield func(Level, error) bool) {
		cfg, err := newConfig(opts)
		if err != nil {
			yield(Level{}, err)
			return
		}
		m, closer, err := cfg.buildMiner()
		if err != nil {
			yield(Level{}, err)
			return
		}
		if closer != nil {
			defer closer.Close()
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()

		type event struct {
			k     int
			level []assoc.ItemsetCount
		}
		events := make(chan event)
		stop := make(chan struct{})
		var stopOnce sync.Once
		progress := cfg.passHook()
		if po, ok := m.(assoc.PassObserver); ok {
			po.SetPassHook(func(stat assoc.PassStat, level []assoc.ItemsetCount) {
				if progress != nil {
					progress(stat, level)
				}
				if len(level) == 0 {
					return // not final at this point; the Result has it
				}
				select {
				case events <- event{stat.K, level}:
				case <-stop:
				}
			})
		}
		type outcome struct {
			res *assoc.Result
			err error
		}
		done := make(chan outcome, 1)
		go func() {
			res, err := assoc.MineContext(ctx, m, db.unwrap(), cfg.minSupport)
			done <- outcome{res, err}
			close(events)
		}()
		// abort unblocks a hook mid-send, cancels the engine, and drains
		// the event channel until the mining goroutine closes it.
		abort := func() {
			stopOnce.Do(func() { close(stop) })
			cancel()
			for range events { //nolint:revive // draining until close
			}
		}

		nextK := 1
		for ev := range events {
			if ev.k != nextK {
				continue // defensive: only in-order levels stream early
			}
			if !yield(Level{K: ev.k, Itemsets: convertLevel(ev.level)}, nil) {
				abort()
				return
			}
			nextK++
		}
		out := <-done
		if out.err != nil {
			yield(Level{}, out.err)
			return
		}
		for k := nextK; k <= len(out.res.Levels); k++ {
			level := out.res.Levels[k-1]
			if len(level) == 0 {
				continue
			}
			if !yield(Level{K: k, Itemsets: convertLevel(level)}, nil) {
				return
			}
		}
	}
}
