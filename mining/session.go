package mining

import (
	"context"
	"io"
	"sync"

	"repro/internal/assoc"
	"repro/internal/transactions"
)

// MaintainStats describes the work one Session.Maintain call did.
type MaintainStats struct {
	// NumShards is the store's shard count.
	NumShards int
	// DirtyShards is how many shards were re-counted (version changed).
	DirtyShards int
	// RecountedTx is how many transactions those shards held.
	RecountedTx int
	// FullRun reports a fall-back to a full re-mine, with Reason saying
	// why ("" when the update stayed incremental).
	FullRun bool
	Reason  string
}

// Session is the stateful mining handle: it owns an updatable sharded
// store and keeps a mined frequent set current across Append and DeleteAt
// — the first-class form of the incremental maintenance backend that was
// previously reachable only through CLI plumbing.
//
// Mine (or Maintain, which also reports work stats) brings the result up
// to date: the first call runs a full mine and caches per-shard counting
// structures; later calls re-count only the shards an update dirtied,
// falling back to a full re-mine only when the maintained frequent set's
// negative border is crossed. Every returned Result is byte-identical to
// a from-scratch run over the store's current contents.
//
// The Algorithm option selects the full-run engine; with Transport the
// distributed engine is bound to the store, so full runs re-ship only
// dirty shards to the workers. Close releases whatever the engine owns
// (in-process transport workers, rpc connections).
//
// A Session serialises its own methods with a mutex, so it is safe for
// concurrent use; mutations simply block while a Maintain is running.
type Session struct {
	mu       sync.Mutex
	cfg      *config
	store    *transactions.ShardedDB
	inc      *assoc.Incremental
	closer   io.Closer
	attached bool
	closed   bool
	last     *Result
}

// NewSession creates a session over a copy-free bulk load of db (which
// must not be mutated afterwards); a nil db starts empty. The options are
// the same set Mine takes, plus the session-only ShardCap and TrackSlack;
// MinSupport is fixed for the session's lifetime.
func NewSession(db *DB, opts ...Option) (*Session, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	base, closer, err := cfg.buildMiner()
	if err != nil {
		return nil, err
	}
	if hook := cfg.passHook(); hook != nil {
		if po, ok := base.(assoc.PassObserver); ok {
			po.SetPassHook(hook)
		}
	}
	var store *transactions.ShardedDB
	if db != nil && db.Len() > 0 {
		store = transactions.NewShardedDBFrom(db.db, cfg.shardCap)
	} else {
		store = transactions.NewShardedDB(cfg.shardCap)
	}
	return &Session{
		cfg:   cfg,
		store: store,
		inc: &assoc.Incremental{
			Base:       base,
			Workers:    cfg.workers,
			TrackSlack: cfg.trackSlack,
		},
		closer: closer,
	}, nil
}

// Len returns the number of live transactions in the store.
func (s *Session) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.Len()
}

// Append adds one transaction (deduplicated, sorted; negative ids are
// rejected). The result is stale until the next Mine or Maintain.
func (s *Session) Append(items ...int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.store.Append(items...)
}

// DeleteAt removes the transaction with global id tid (its position in
// the live concatenation, 0-based) and returns it. Later transactions'
// ids shift down by one. The result is stale until the next Mine or
// Maintain.
func (s *Session) DeleteAt(tid int) ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	tx, err := s.store.DeleteAt(tid)
	if err != nil {
		return nil, err
	}
	return tx, nil
}

// Mine brings the frequent set up to date with the store and returns it:
// a full mine on the first call, an incremental maintain afterwards. An
// empty store returns ErrEmptyDB. Cancelling ctx aborts promptly with
// ctx.Err(), leaves the maintained state consistent, and the next call
// picks up where this one left off.
func (s *Session) Mine(ctx context.Context) (*Result, error) {
	res, _, err := s.Maintain(ctx)
	return res, err
}

// Maintain is Mine with the work stats: how many shards were re-counted,
// and whether (and why) the update fell back to a full re-mine.
func (s *Session) Maintain(ctx context.Context) (*Result, MaintainStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, MaintainStats{}, ErrClosed
	}
	var (
		res   *assoc.Result
		stats assoc.MaintainStats
		err   error
	)
	if !s.attached {
		res, stats, err = s.inc.AttachContext(ctx, s.store, s.cfg.minSupport)
		if err == nil {
			s.attached = true
		}
	} else {
		res, stats, err = s.inc.MaintainContext(ctx)
	}
	if err != nil {
		return nil, MaintainStats(stats), err
	}
	s.last = wrapResult(res)
	return s.last, MaintainStats(stats), nil
}

// Snapshot returns the store's current live transactions as an immutable
// DB (the itemsets are shared with the store, not copied — treat the
// snapshot as read-only and do not mutate the session while mining it).
// Useful for verifying a maintained result against a one-shot Mine.
func (s *Session) Snapshot() *DB {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &DB{db: s.store.Snapshot()}
}

// Result returns the last maintained result (nil before the first
// successful Mine). It may be stale with respect to later mutations.
func (s *Session) Result() *Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Rules regenerates the association rules from the maintained frequent
// set — itemset counts are maintained incrementally and rules are cheap
// post-processing over them. It returns ErrClosed after Close and
// assoc's ErrNotAttached error before the first successful Mine.
func (s *Session) Rules(minConfidence float64) ([]Rule, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	rules, err := s.inc.Rules(minConfidence)
	if err != nil {
		return nil, err
	}
	out := make([]Rule, len(rules))
	for i, rule := range rules {
		out[i] = Rule{
			Antecedent: rule.Antecedent,
			Consequent: rule.Consequent,
			Support:    rule.Support,
			Confidence: rule.Confidence,
			Lift:       rule.Lift,
		}
	}
	return out, nil
}

// Close releases the engine's resources (the distributed transport's
// worker goroutines or rpc connections). The session is unusable
// afterwards; Close is idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}
