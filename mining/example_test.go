package mining_test

import (
	"context"
	"fmt"
	"log"

	"repro/mining"
)

// ExampleMine mines a tiny basket database with the default engine and
// reads one itemset's support back.
func ExampleMine() {
	db, err := mining.NewDB([][]int{
		{0, 1, 2},
		{0, 1},
		{0, 2},
		{1, 2},
		{0, 1, 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := mining.Mine(context.Background(), db,
		mining.MinSupport(0.4),
		mining.Workers(0), // 0 = GOMAXPROCS; the result is identical at any worker count
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d frequent itemsets\n", res.NumFrequent())
	sup, _ := res.Support(0, 1)
	fmt.Printf("support({0,1}) = %d\n", sup)
	// Output:
	// 7 frequent itemsets
	// support({0,1}) = 3
}

// ExampleMineStream consumes results level by level — short itemsets are
// available while longer ones are still being counted.
func ExampleMineStream() {
	db, err := mining.NewDB([][]int{
		{0, 1, 2},
		{0, 1},
		{0, 2},
		{1, 2},
		{0, 1, 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	for level, err := range mining.MineStream(context.Background(), db,
		mining.MinSupport(0.4), mining.Algorithm("Apriori")) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("level %d: %d itemsets\n", level.K, len(level.Itemsets))
	}
	// Output:
	// level 1: 3 itemsets
	// level 2: 3 itemsets
	// level 3: 1 itemsets
}

// ExampleSession shows the stateful handle: mine, append, maintain. The
// maintained result is byte-identical to re-mining from scratch, but
// after an update only the dirtied shards are re-counted.
func ExampleSession() {
	db, err := mining.NewDB([][]int{
		{0, 1, 2},
		{0, 1},
		{0, 2},
		{1, 2},
		{0, 1, 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	s, err := mining.NewSession(db, mining.MinSupport(0.4))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	res, err := s.Mine(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial: %d frequent itemsets\n", res.NumFrequent())

	if err := s.Append(0, 1); err != nil {
		log.Fatal(err)
	}
	res, err = s.Mine(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after append: %d frequent itemsets\n", res.NumFrequent())
	// Output:
	// initial: 7 frequent itemsets
	// after append: 6 frequent itemsets
}
