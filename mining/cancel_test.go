package mining

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// waitForGoroutines polls until the goroutine count is back to at most
// want, dumping stacks on timeout — the leak check of the cancellation
// contract.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > want {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d alive, want <= %d\n%s", got, want, buf[:runtime.Stack(buf, true)])
	}
}

// TestCancelMidMine is the cancellation property test of the issue: for
// every registered engine at workers 1 and 4, cancelling mid-pass (from
// the first Progress event, so the mine is provably underway) returns
// context.Canceled promptly and leaks no goroutines.
func TestCancelMidMine(t *testing.T) {
	db, _ := testData(t, 2000, 21)
	for _, name := range Algorithms() {
		for _, workers := range []int{1, 4} {
			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			start := time.Now()
			res, err := Mine(ctx, db,
				Algorithm(name), MinSupport(0.01), Workers(workers),
				Progress(func(PassStat) { cancel() }))
			elapsed := time.Since(start)
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s workers=%d: err = %v (res=%v), want context.Canceled", name, workers, err, res)
			}
			if elapsed > 5*time.Second {
				t.Errorf("%s workers=%d: cancellation took %v", name, workers, elapsed)
			}
			waitForGoroutines(t, before)
		}
	}
}

// TestCancelBeforeMine pins the fast path: an already-cancelled context
// returns context.Canceled without scanning anything.
func TestCancelBeforeMine(t *testing.T) {
	db, _ := testData(t, 200, 23)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Algorithms() {
		if _, err := Mine(ctx, db, Algorithm(name), MinSupport(0.01)); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestCancelSession pins Session cancellation: a cancelled Maintain
// returns context.Canceled, leaves the session consistent, and the next
// Maintain under a live context succeeds with the exact answer.
func TestCancelSession(t *testing.T) {
	db, _ := testData(t, 1500, 25)
	s, err := NewSession(db, MinSupport(0.002), ShardCap(128), Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Mine(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled attach: err = %v, want context.Canceled", err)
	}
	res, err := s.Mine(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Mine(context.Background(), db, Algorithm("Apriori"), MinSupport(0.002))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Canonical()) != string(want.Canonical()) {
		t.Fatal("post-cancel attach differs from a from-scratch run")
	}

	// Cancel an incremental maintain mid-flight, then recover.
	if err := s.Append(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Maintain(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled maintain: err = %v, want context.Canceled", err)
	}
	if _, _, err := s.Maintain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCancelMineStream pins that a context cancelled between levels
// surfaces as the stream's final error.
func TestCancelMineStream(t *testing.T) {
	db, _ := testData(t, 1000, 27)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sawCancel := false
	for level, err := range MineStream(ctx, db, Algorithm("Apriori"), MinSupport(0.002)) {
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("stream error = %v, want context.Canceled", err)
			}
			sawCancel = true
			break
		}
		if level.K == 1 {
			cancel()
		}
	}
	if !sawCancel {
		t.Fatal("stream finished without surfacing the cancellation")
	}
	waitForGoroutines(t, before)
}
