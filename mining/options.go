package mining

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/assoc"
	"repro/internal/dist"
)

// Defaults applied when the corresponding option is omitted. They are
// pinned by the option tests and the cross-engine defaults table test.
const (
	// DefaultMinSupport is the relative support used when MinSupport is
	// not given.
	DefaultMinSupport = 0.01
	// DefaultAlgorithm probes the workload's pass-1 scan and dispatches
	// to the expected-fastest engine; results are identical regardless.
	DefaultAlgorithm = "Auto"
	// DefaultTrackSlack is the factor sessions lower the support by when
	// freezing the tracked candidate set (see TrackSlack).
	DefaultTrackSlack = 0.8
	// DefaultShardCap is the per-shard transaction capacity of a
	// session's store when ShardCap is not given.
	DefaultShardCap = 1024
)

// Option configures Mine, MineStream or NewSession. Options are applied
// in order; a later option overrides an earlier one. An invalid value
// surfaces as an error (wrapping ErrBadOption or ErrUnknownAlgorithm)
// from the call the option was passed to, before any mining starts.
type Option func(*config) error

// config is the resolved option set.
type config struct {
	minSupport float64
	algorithm  string
	workers    int
	transport  *TransportSpec
	retry      *RetrySpec
	faults     *FaultSpec
	progress   func(PassStat)
	shardCap   int
	trackSlack float64
}

// newConfig applies opts over the defaults.
func newConfig(opts []Option) (*config, error) {
	cfg := &config{
		minSupport: DefaultMinSupport,
		algorithm:  DefaultAlgorithm,
		workers:    1,
		trackSlack: DefaultTrackSlack,
		shardCap:   DefaultShardCap,
	}
	for _, opt := range opts {
		if err := opt(cfg); err != nil {
			return nil, err
		}
	}
	if cfg.transport == nil {
		if cfg.retry != nil {
			return nil, fmt.Errorf("%w: Retry requires Transport (local engines have no calls to retry)", ErrBadOption)
		}
		if cfg.faults != nil {
			return nil, fmt.Errorf("%w: Faults requires Transport (there is no transport to inject faults into)", ErrBadOption)
		}
	}
	return cfg, nil
}

// MinSupport sets the relative minimum support in (0, 1]. Out-of-range
// values are rejected by the engines with ErrBadSupport, exactly like the
// internal call paths, so degenerate behavior cannot diverge between the
// facade and the engines.
func MinSupport(s float64) Option {
	return func(c *config) error {
		c.minSupport = s
		return nil
	}
}

// Workers bounds the goroutines of every counting scan, tree build and
// projection fan-out (count distribution: private per-worker counters
// over contiguous shards, merged after each pass — results are
// byte-identical at any worker count). n == 1 runs serially with no
// goroutines; n == 0 resolves to runtime.GOMAXPROCS(0); negative n is an
// error.
func Workers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("%w: Workers(%d)", ErrBadOption, n)
		}
		if n == 0 {
			n = runtime.GOMAXPROCS(0)
		}
		c.workers = n
		return nil
	}
}

// Algorithm selects the engine by name — any name in Algorithms(). The
// default "Auto" probes the workload and dispatches; every engine finds
// identical itemsets, so the choice moves only wall-clock time.
func Algorithm(name string) Option {
	return func(c *config) error {
		c.algorithm = name
		return nil
	}
}

// Algorithms lists the selectable engine names in registry order.
func Algorithms() []string {
	miners := assoc.Registered()
	out := make([]string, len(miners))
	for i, m := range miners {
		out[i] = m.Name()
	}
	return out
}

// Progress registers a callback invoked after each completed counting
// pass, on the mining goroutine (keep it fast; it runs inside the mining
// hot path). Sessions report progress for full mines — the attach and any
// border-crossing re-mine — while purely incremental maintains finish
// without pass events.
func Progress(fn func(PassStat)) Option {
	return func(c *config) error {
		c.progress = fn
		return nil
	}
}

// TransportSpec describes how the distributed backend reaches its
// workers. Build one with LocalTransport or RPCTransport and apply it
// with Transport.
type TransportSpec struct {
	workers int
	addrs   []string
}

// LocalTransport runs n in-process workers fed by channels, with every
// payload making a real gob round trip — the single-binary deployment
// that still measures true serialization cost. n <= 0 means 1.
func LocalTransport(n int) TransportSpec {
	if n < 1 {
		n = 1
	}
	return TransportSpec{workers: n}
}

// RPCTransport reaches one worker process per "host:port" address over
// net/rpc's gob codec. Dialing happens when mining starts (or when the
// session is created); a dial failure surfaces from that call.
func RPCTransport(addrs ...string) TransportSpec {
	return TransportSpec{addrs: append([]string(nil), addrs...)}
}

// Transport routes mining through the distributed coordinator/worker
// backend over the given transport. It composes with Algorithm: "Apriori"
// and "FPGrowth" select the distributed counting strategy of the same
// name, "Auto", "Distributed" or the default select distributed Apriori,
// and any other engine is an error (those engines have no distributed
// form). Coordinator-side fan-outs default to the transport's worker
// count (override with an explicit Workers). Distributed results are
// byte-identical to local ones.
func Transport(spec TransportSpec) Option {
	return func(c *config) error {
		c.transport = &spec
		return nil
	}
}

// RetrySpec tunes the distributed backend's fault handling; the zero
// value of each field keeps its default. See Retry.
type RetrySpec struct {
	// MaxAttempts is the total tries per worker call (first attempt
	// included); 0 means 3. 1 disables retries.
	MaxAttempts int
	// CallTimeout is the per-attempt deadline; 0 disables it. An attempt
	// exceeding it counts as a retryable failure.
	CallTimeout time.Duration
	// Backoff is the pause before the second attempt; it doubles per
	// retry (with deterministic jitter) up to MaxBackoff. 0 means 5ms.
	Backoff time.Duration
	// MaxBackoff caps the growth; 0 means 250ms.
	MaxBackoff time.Duration
	// Seed keys the jitter (and pairs with FaultSpec.Seed for replayable
	// schedules); 0 means 1.
	Seed int64
}

// Retry sets the distributed backend's retry policy: per-call deadlines,
// a bounded number of attempts, and capped exponential backoff with
// deterministic jitter. Retries are transparent — a mine that succeeds
// after retries or worker failover returns exactly the bytes a fault-free
// run returns. When every worker is lost the engine degrades to local
// counting instead of failing; the affected passes carry
// PassStat.Degraded. Requires Transport.
func Retry(spec RetrySpec) Option {
	return func(c *config) error {
		if spec.MaxAttempts < 0 || spec.CallTimeout < 0 || spec.Backoff < 0 || spec.MaxBackoff < 0 {
			return fmt.Errorf("%w: Retry(%+v) has negative fields", ErrBadOption, spec)
		}
		c.retry = &spec
		return nil
	}
}

// FaultSpec is a seeded random fault schedule for the distributed
// backend — the public face of the deterministic fault-injection harness
// the chaos tests run on. Drop, Error and Kill are per-call probabilities
// in [0, 1] (cumulative over one draw, so their sum must stay <= 1). See
// Faults.
type FaultSpec struct {
	// Seed keys every draw; the same seed replays the same schedule.
	// 0 means 1.
	Seed int64
	// Drop is the probability a call's reply is swallowed; the call
	// burns its full CallTimeout, so combine with Retry — with no
	// deadline a dropped reply blocks until the context is cancelled.
	Drop float64
	// Error is the probability of a one-shot connection failure.
	Error float64
	// Kill is the probability the worker dies for good (sticky).
	Kill float64
	// Delay is how long a delayed call sleeps, with probability
	// DelayProb; Delay <= 0 disables delays.
	Delay     time.Duration
	DelayProb float64
	// PartitionAfter, when > 0, kills every worker once that many calls
	// have entered the transport — a full partition mid-mine.
	PartitionAfter int
}

// Faults wraps the transport in the deterministic fault injector — the
// tool for rehearsing worker failures against real workloads (dmine and
// dmbench expose it as -distfaults). Completed mines are still exact:
// injected faults are absorbed by retries, failover or local degradation,
// or surface as an error — never as wrong counts. Requires Transport.
func Faults(spec FaultSpec) Option {
	return func(c *config) error {
		for _, p := range []float64{spec.Drop, spec.Error, spec.Kill, spec.DelayProb} {
			if p < 0 || p > 1 {
				return fmt.Errorf("%w: Faults(%+v) has probabilities outside [0, 1]", ErrBadOption, spec)
			}
		}
		if sum := spec.Drop + spec.Error + spec.Kill; sum > 1 {
			return fmt.Errorf("%w: Faults(%+v): Drop+Error+Kill = %v > 1", ErrBadOption, spec, sum)
		}
		if spec.PartitionAfter < 0 {
			return fmt.Errorf("%w: Faults(%+v): negative PartitionAfter", ErrBadOption, spec)
		}
		c.faults = &spec
		return nil
	}
}

// ShardCap sets a session store's per-shard transaction capacity (rounded
// up to a multiple of 64; smaller shards mean finer-grained incremental
// re-counting, larger ones fewer version stamps). n == 0 keeps
// DefaultShardCap; negative n is an error. Mine and MineStream ignore it.
func ShardCap(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("%w: ShardCap(%d)", ErrBadOption, n)
		}
		if n == 0 {
			n = DefaultShardCap
		}
		c.shardCap = n
		return nil
	}
}

// TrackSlack sets the factor in (0, 1] a session lowers the support by
// when freezing its tracked candidate set: tracking at s*minSupport keeps
// near-threshold itemsets' counts cached so small updates stay
// incremental. Results are exact regardless — slack only trades cache
// memory against full-re-mine frequency. s == 0 keeps DefaultTrackSlack;
// values outside [0, 1] are an error. Mine and MineStream ignore it.
func TrackSlack(s float64) Option {
	return func(c *config) error {
		if s < 0 || s > 1 {
			return fmt.Errorf("%w: TrackSlack(%v)", ErrBadOption, s)
		}
		if s == 0 {
			s = DefaultTrackSlack
		}
		c.trackSlack = s
		return nil
	}
}

// buildMiner constructs a fresh engine for one Mine/MineStream call or
// one Session. The returned closer (possibly nil) releases resources the
// engine owns — the distributed transport's worker goroutines or rpc
// connections — and must be closed when the engine is done.
func (c *config) buildMiner() (assoc.Miner, io.Closer, error) {
	if c.transport != nil {
		engine := ""
		switch c.algorithm {
		case "", "Auto", "Distributed", assoc.DistEngineApriori:
			engine = assoc.DistEngineApriori
		case assoc.DistEngineFPGrowth:
			engine = assoc.DistEngineFPGrowth
		default:
			return nil, nil, fmt.Errorf("%w: Transport supports Algorithm %q or %q, not %q",
				ErrBadOption, assoc.DistEngineApriori, assoc.DistEngineFPGrowth, c.algorithm)
		}
		t, err := c.transport.open()
		if err != nil {
			return nil, nil, err
		}
		if c.faults != nil {
			t = dist.NewFaultTransport(t, dist.FaultPlan{
				Seed:           c.faults.Seed,
				Drop:           c.faults.Drop,
				Error:          c.faults.Error,
				Kill:           c.faults.Kill,
				Delay:          c.faults.Delay,
				DelayProb:      c.faults.DelayProb,
				PartitionAfter: c.faults.PartitionAfter,
			})
		}
		// The coordinator-side work (FPGrowth's projection fan-out over
		// the merged tree) defaults to the transport's worker count, so a
		// 4-worker transport parallelises the whole pipeline without a
		// separate Workers option; an explicit Workers(n > 1) overrides.
		workers := c.workers
		if workers <= 1 {
			workers = t.NumWorkers()
		}
		d := &assoc.Distributed{Transport: t, Workers: workers, Engine: engine}
		if c.retry != nil {
			d.Retry = dist.RetryPolicy{
				MaxAttempts: c.retry.MaxAttempts,
				CallTimeout: c.retry.CallTimeout,
				BaseBackoff: c.retry.Backoff,
				MaxBackoff:  c.retry.MaxBackoff,
				Seed:        c.retry.Seed,
			}
		}
		return d, d, nil
	}
	for _, m := range assoc.Registered() {
		if m.Name() != c.algorithm {
			continue
		}
		if c.workers != 1 {
			if ws, ok := m.(assoc.WorkerSetter); ok {
				ws.SetWorkers(c.workers)
			}
		}
		closer, _ := m.(io.Closer) // the plain Distributed engine owns a lazy transport
		return m, closer, nil
	}
	return nil, nil, fmt.Errorf("%w: %q (want one of %v)", ErrUnknownAlgorithm, c.algorithm, Algorithms())
}

// open dials or starts the transport.
func (t *TransportSpec) open() (dist.Transport, error) {
	if len(t.addrs) > 0 {
		return dist.DialRPC(t.addrs)
	}
	return dist.NewLocalTransport(t.workers, true), nil
}

// passHook adapts the Progress callback to the engines' hook signature.
func (c *config) passHook() assoc.PassHook {
	if c.progress == nil {
		return nil
	}
	fn := c.progress
	return func(stat assoc.PassStat, _ []assoc.ItemsetCount) {
		fn(PassStat(stat))
	}
}
