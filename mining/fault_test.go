package mining

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// testRetry is the tight retry spec the facade fault tests run under.
func testRetry(seed int64) RetrySpec {
	return RetrySpec{
		MaxAttempts: 3,
		CallTimeout: 25 * time.Millisecond,
		Backoff:     200 * time.Microsecond,
		MaxBackoff:  2 * time.Millisecond,
		Seed:        seed,
	}
}

// TestMineUnderFaultsByteIdentical pins the facade-level invariant: a
// mine whose transport injects a seeded schedule of drops, one-shot
// errors and sticky worker deaths — absorbed by retries, failover or
// local degradation — returns exactly the bytes of a fault-free local
// run, for both distributed strategies.
func TestMineUnderFaultsByteIdentical(t *testing.T) {
	db, _ := testData(t, 400, 31)
	for _, algo := range []string{"Apriori", "FPGrowth"} {
		want, err := Mine(context.Background(), db, Algorithm(algo), MinSupport(0.01))
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			got, err := Mine(context.Background(), db,
				Algorithm(algo), MinSupport(0.01),
				Transport(LocalTransport(2)),
				Retry(testRetry(seed)),
				Faults(FaultSpec{Seed: seed, Drop: 0.02, Error: 0.1, Kill: 0.02}))
			if err != nil {
				t.Fatalf("%s seed %d: %v", algo, seed, err)
			}
			if string(got.Canonical()) != string(want.Canonical()) {
				t.Errorf("%s seed %d: faulty mine differs from local run", algo, seed)
			}
		}
	}
}

// TestMineDegradedReportsPassStat pins the degradation event: when the
// schedule partitions the cluster away mid-mine, the mine still succeeds
// (local fallback) and the Progress stream plus Result.Passes carry the
// Degraded flag.
func TestMineDegradedReportsPassStat(t *testing.T) {
	db, _ := testData(t, 300, 33)
	var sawDegraded bool
	res, err := Mine(context.Background(), db,
		Algorithm("Apriori"), MinSupport(0.01),
		Transport(LocalTransport(2)),
		Retry(testRetry(1)),
		Faults(FaultSpec{Seed: 1, PartitionAfter: 1}),
		Progress(func(p PassStat) { sawDegraded = sawDegraded || p.Degraded }))
	if err != nil {
		t.Fatalf("partitioned mine failed instead of degrading: %v", err)
	}
	if !sawDegraded {
		t.Error("no Progress event carried Degraded = true")
	}
	degradedPasses := 0
	for _, p := range res.Passes() {
		if p.Degraded {
			degradedPasses++
		}
	}
	if degradedPasses == 0 {
		t.Error("Result.Passes carries no Degraded pass")
	}
	want, err := Mine(context.Background(), db, Algorithm("Apriori"), MinSupport(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Canonical()) != string(want.Canonical()) {
		t.Error("degraded mine differs from local run")
	}
}

// TestRetryAndFaultsRequireTransport pins the option contract: both are
// distributed-backend knobs and reject configurations without Transport,
// as do malformed specs.
func TestRetryAndFaultsRequireTransport(t *testing.T) {
	db, _ := testData(t, 50, 35)
	if _, err := Mine(context.Background(), db, Retry(RetrySpec{})); !errors.Is(err, ErrBadOption) {
		t.Errorf("Retry without Transport: err = %v, want ErrBadOption", err)
	}
	if _, err := Mine(context.Background(), db, Faults(FaultSpec{})); !errors.Is(err, ErrBadOption) {
		t.Errorf("Faults without Transport: err = %v, want ErrBadOption", err)
	}
	for _, opt := range []Option{
		Retry(RetrySpec{MaxAttempts: -1}),
		Faults(FaultSpec{Drop: 1.5}),
		Faults(FaultSpec{Drop: 0.5, Error: 0.4, Kill: 0.3}),
		Faults(FaultSpec{PartitionAfter: -2}),
	} {
		if _, err := Mine(context.Background(), db, Transport(LocalTransport(1)), opt); !errors.Is(err, ErrBadOption) {
			t.Errorf("malformed spec: err = %v, want ErrBadOption", err)
		}
	}
}

// TestSessionUnderFaults pins the stateful path: a session over a faulty
// transport attaches, absorbs the injected errors across maintains, and
// every maintained result matches a from-scratch mine of the snapshot.
// It also re-pins the Close-idempotence satellite on the session that
// owns a fault-wrapped transport.
func TestSessionUnderFaults(t *testing.T) {
	before := runtime.NumGoroutine()
	db, _ := testData(t, 400, 37)
	s, err := NewSession(db, MinSupport(0.01), ShardCap(128),
		Transport(LocalTransport(2)),
		Retry(testRetry(7)),
		Faults(FaultSpec{Seed: 7, Error: 0.1, Delay: 100 * time.Microsecond, DelayProb: 0.1}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mine(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(1, 2, 3+i%2); err != nil {
			t.Fatal(err)
		}
		res, _, err := s.Maintain(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want, err := Mine(context.Background(), s.Snapshot(), Algorithm("Apriori"), MinSupport(0.01))
		if err != nil {
			t.Fatal(err)
		}
		if string(res.Canonical()) != string(want.Canonical()) {
			t.Fatalf("maintain %d under faults differs from from-scratch mine", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Append(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Append err = %v, want ErrClosed", err)
	}
	waitForGoroutines(t, before)
}
