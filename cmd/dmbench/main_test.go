package main

import (
	"errors"
	"testing"

	"repro/internal/cliutil"
	"repro/internal/experiments"
)

// The heavy lifting is tested in internal/experiments; here only the
// registry wiring the CLI depends on.
func TestRegistryNonEmpty(t *testing.T) {
	all := experiments.All()
	if len(all) < 10 {
		t.Fatalf("experiments = %d", len(all))
	}
	for _, e := range all {
		if e.Run == nil {
			t.Errorf("experiment %s has no Run", e.ID)
		}
		if _, err := experiments.ByID(e.ID); err != nil {
			t.Errorf("ByID(%s): %v", e.ID, err)
		}
	}
}

func TestInvalidFlagsExitNonzero(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuch"},
		{"-workers", "NaN"},
		{"-exp", "NOPE"},
	} {
		err := run(args)
		if !errors.Is(err, cliutil.ErrInvalidFlags) {
			t.Errorf("run(%v): err = %v, want ErrInvalidFlags", args, err)
		}
		if cliutil.ExitCode(err) != 2 {
			t.Errorf("run(%v): exit code = %d, want 2", args, cliutil.ExitCode(err))
		}
	}
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}
