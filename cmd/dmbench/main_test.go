package main

import (
	"testing"

	"repro/internal/experiments"
)

// The heavy lifting is tested in internal/experiments; here only the
// registry wiring the CLI depends on.
func TestRegistryNonEmpty(t *testing.T) {
	all := experiments.All()
	if len(all) < 10 {
		t.Fatalf("experiments = %d", len(all))
	}
	for _, e := range all {
		if e.Run == nil {
			t.Errorf("experiment %s has no Run", e.ID)
		}
		if _, err := experiments.ByID(e.ID); err != nil {
			t.Errorf("ByID(%s): %v", e.ID, err)
		}
	}
}
