// Command dmbench regenerates the reproduction's experiment tables — one
// per table/figure of the canonical evaluations indexed in DESIGN.md.
//
// Usage:
//
//	dmbench               # run every experiment at full scale
//	dmbench -quick        # laptop-seconds versions of every experiment
//	dmbench -exp A1,C3    # selected experiments
//	dmbench -list         # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		quickFlag = flag.Bool("quick", false, "run reduced workloads")
		listFlag  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	scale := experiments.Full
	if *quickFlag {
		scale = experiments.Quick
	}
	var selected []experiments.Experiment
	if *expFlag == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		if err := e.Run(os.Stdout, scale); err != nil {
			fmt.Fprintf(os.Stderr, "EXP-%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
