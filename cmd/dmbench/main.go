// Command dmbench regenerates the reproduction's experiment tables — one
// per table/figure of the canonical evaluations indexed in DESIGN.md.
//
// Usage:
//
//	dmbench               # run every experiment at full scale
//	dmbench -quick        # laptop-seconds versions of every experiment
//	dmbench -exp A1,C3    # selected experiments
//	dmbench -list         # list experiment ids and titles
//	dmbench -workers 4    # count-distribute miner scans across 4 goroutines
//	dmbench -paralleljson BENCH_parallel.json   # emit the EXP-P1 baseline
//	dmbench -incrementaljson BENCH_incremental.json   # emit the EXP-P2 baseline
//	dmbench -fpgrowthjson BENCH_fpgrowth.json   # emit the EXP-P3 baseline
//	dmbench -dist         # run the EXP-P4 distributed overhead sweep
//	dmbench -distworkers 4   # narrow the EXP-P4 worker ladder to one count
//	dmbench -distjson BENCH_dist.json   # emit the EXP-P4 baseline
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		expFlag      = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		quickFlag    = flag.Bool("quick", false, "run reduced workloads")
		listFlag     = flag.Bool("list", false, "list experiments and exit")
		workersFlag  = flag.Int("workers", 1, "counting-scan goroutines for miners that support count distribution; 0 means GOMAXPROCS (same semantics as dmine)")
		parallelJSON = flag.String("paralleljson", "", "write the EXP-P1 parallel baseline as JSON to this file and exit")
		incJSON      = flag.String("incrementaljson", "", "write the EXP-P2 incremental baseline as JSON to this file and exit")
		fpJSON       = flag.String("fpgrowthjson", "", "write the EXP-P3 pattern-growth baseline as JSON to this file and exit")
		distFlag     = flag.Bool("dist", false, "run the EXP-P4 distributed overhead sweep (shorthand for -exp P4)")
		distWorkers  = flag.Int("distworkers", 0, "narrow the EXP-P4 worker ladder to this single worker count (0 keeps 1/2/4)")
		distJSON     = flag.String("distjson", "", "write the EXP-P4 distributed baseline as JSON to this file and exit")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	scale := experiments.Full
	if *quickFlag {
		scale = experiments.Quick
	}
	if n := *workersFlag; n != 1 {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		experiments.DefaultWorkers = n
	}
	if *distWorkers > 0 {
		experiments.DistWorkerCounts = []int{*distWorkers}
	}
	if *distJSON != "" {
		var buf bytes.Buffer
		if err := experiments.WriteDistBaseline(&buf, scale); err != nil {
			fmt.Fprintln(os.Stderr, "distributed baseline failed:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*distJSON, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote distributed baseline to %s\n", *distJSON)
		return
	}
	if *distFlag {
		if err := experiments.RunP4(os.Stdout, scale); err != nil {
			fmt.Fprintln(os.Stderr, "EXP-P4 failed:", err)
			os.Exit(1)
		}
		return
	}
	if *parallelJSON != "" {
		// Measure into memory first so a failed or interrupted sweep never
		// truncates an existing baseline file.
		var buf bytes.Buffer
		if err := experiments.WriteParallelBaseline(&buf, scale); err != nil {
			fmt.Fprintln(os.Stderr, "parallel baseline failed:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*parallelJSON, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote parallel baseline to %s\n", *parallelJSON)
		return
	}
	if *incJSON != "" {
		var buf bytes.Buffer
		if err := experiments.WriteIncrementalBaseline(&buf, scale); err != nil {
			fmt.Fprintln(os.Stderr, "incremental baseline failed:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*incJSON, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote incremental baseline to %s\n", *incJSON)
		return
	}
	if *fpJSON != "" {
		var buf bytes.Buffer
		if err := experiments.WritePatternBaseline(&buf, scale); err != nil {
			fmt.Fprintln(os.Stderr, "pattern-growth baseline failed:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*fpJSON, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote pattern-growth baseline to %s\n", *fpJSON)
		return
	}
	var selected []experiments.Experiment
	if *expFlag == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		if err := e.Run(os.Stdout, scale); err != nil {
			fmt.Fprintf(os.Stderr, "EXP-%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
