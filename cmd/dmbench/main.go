// Command dmbench regenerates the reproduction's experiment tables — one
// per table/figure of the canonical evaluations indexed in DESIGN.md.
//
// Usage:
//
//	dmbench               # run every experiment at full scale
//	dmbench -quick        # laptop-seconds versions of every experiment
//	dmbench -exp A1,C3    # selected experiments
//	dmbench -list         # list experiment ids and titles
//	dmbench -workers 4    # count-distribute miner scans across 4 goroutines
//	dmbench -paralleljson BENCH_parallel.json   # emit the EXP-P1 baseline
//	dmbench -incrementaljson BENCH_incremental.json   # emit the EXP-P2 baseline
//	dmbench -fpgrowthjson BENCH_fpgrowth.json   # emit the EXP-P3 baseline
//	dmbench -dist         # run the EXP-P4 distributed overhead sweep
//	dmbench -distworkers 4   # narrow the EXP-P4 worker ladder to one count
//	dmbench -distjson BENCH_dist.json   # emit the EXP-P4 baseline
//	dmbench -faultsjson BENCH_faults.json   # emit the EXP-F1 baseline
//	dmbench -servejson BENCH_serve.json   # emit the EXP-SV1 serving baseline
//	dmbench -durablejson BENCH_durable.json   # emit the EXP-D1 durability baseline
//	dmbench -distfaults seed=1,err=0.1,kill=0.02   # seeded chaos smoke run
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/dist"
	"repro/internal/experiments"
)

func main() {
	err := run(os.Args[1:])
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "dmbench:", err)
	}
	os.Exit(cliutil.ExitCode(err))
}

func run(args []string) error {
	fs := cliutil.NewFlagSet("dmbench")
	var (
		expFlag      = fs.String("exp", "", "comma-separated experiment ids (default: all)")
		quickFlag    = fs.Bool("quick", false, "run reduced workloads")
		listFlag     = fs.Bool("list", false, "list experiments and exit")
		workersFlag  = cliutil.AddWorkersFlag(fs)
		parallelJSON = fs.String("paralleljson", "", "write the EXP-P1 parallel baseline as JSON to this file and exit")
		incJSON      = fs.String("incrementaljson", "", "write the EXP-P2 incremental baseline as JSON to this file and exit")
		fpJSON       = fs.String("fpgrowthjson", "", "write the EXP-P3 pattern-growth baseline as JSON to this file and exit")
		distFlags    = cliutil.AddDistFlags(fs,
			"run the EXP-P4 distributed overhead sweep (shorthand for -exp P4)",
			"narrow the EXP-P4 worker ladder to this single worker count (0 keeps 1/2/4)")
		distJSON    = fs.String("distjson", "", "write the EXP-P4 distributed baseline as JSON to this file and exit")
		faultsJSON  = fs.String("faultsjson", "", "write the EXP-F1 fault-tolerance baseline as JSON to this file and exit")
		serveJSON   = fs.String("servejson", "", "write the EXP-SV1 serving-tier baseline as JSON to this file and exit")
		durableJSON = fs.String("durablejson", "", "write the EXP-D1 durability baseline as JSON to this file and exit")
		faultSpec   = cliutil.AddFaultsFlag(fs)
	)
	if err := cliutil.Parse(fs, args); err != nil {
		return err
	}
	faults, err := cliutil.ParseFaults(*faultSpec)
	if err != nil {
		return err
	}

	if *listFlag {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	scale := experiments.Full
	if *quickFlag {
		scale = experiments.Quick
	}
	if n := *workersFlag; n != 1 {
		experiments.DefaultWorkers = cliutil.ResolveWorkers(n)
	}
	if distFlags.Workers > 0 {
		experiments.DistWorkerCounts = []int{distFlags.Workers}
	}
	// Baselines measure into memory first so a failed or interrupted sweep
	// never truncates an existing file.
	writeBaseline := func(path, what string, write func(*bytes.Buffer) error) error {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			return fmt.Errorf("%s baseline failed: %w", what, err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s baseline to %s\n", what, path)
		return nil
	}
	if *faultsJSON != "" {
		return writeBaseline(*faultsJSON, "fault-tolerance", func(buf *bytes.Buffer) error {
			return experiments.WriteFaultsBaseline(buf, scale)
		})
	}
	if *serveJSON != "" {
		return writeBaseline(*serveJSON, "serving-tier", func(buf *bytes.Buffer) error {
			return experiments.WriteServeBaseline(buf, scale)
		})
	}
	if *durableJSON != "" {
		return writeBaseline(*durableJSON, "durability", func(buf *bytes.Buffer) error {
			return experiments.WriteDurableBaseline(buf, scale)
		})
	}
	if faults != nil {
		// -distfaults is the reproducible chaos smoke: mine the EXP-F1
		// fixture under the seeded schedule and byte-check the result.
		return experiments.RunFaultSmoke(os.Stdout, scale,
			dist.FaultPlan{
				Seed:           faults.Seed,
				Drop:           faults.Drop,
				Error:          faults.Err,
				Kill:           faults.Kill,
				Delay:          faults.Delay,
				DelayProb:      faults.DelayProb,
				PartitionAfter: faults.Partition,
			},
			dist.RetryPolicy{
				MaxAttempts: faults.Attempts,
				CallTimeout: faults.Timeout,
				BaseBackoff: faults.Backoff,
				MaxBackoff:  faults.MaxBackoff,
				Seed:        faults.Seed,
			})
	}
	if *distJSON != "" {
		return writeBaseline(*distJSON, "distributed", func(buf *bytes.Buffer) error {
			return experiments.WriteDistBaseline(buf, scale)
		})
	}
	if distFlags.Dist {
		if err := experiments.RunP4(os.Stdout, scale); err != nil {
			return fmt.Errorf("EXP-P4 failed: %w", err)
		}
		return nil
	}
	if *parallelJSON != "" {
		return writeBaseline(*parallelJSON, "parallel", func(buf *bytes.Buffer) error {
			return experiments.WriteParallelBaseline(buf, scale)
		})
	}
	if *incJSON != "" {
		return writeBaseline(*incJSON, "incremental", func(buf *bytes.Buffer) error {
			return experiments.WriteIncrementalBaseline(buf, scale)
		})
	}
	if *fpJSON != "" {
		return writeBaseline(*fpJSON, "pattern-growth", func(buf *bytes.Buffer) error {
			return experiments.WritePatternBaseline(buf, scale)
		})
	}
	var selected []experiments.Experiment
	if *expFlag == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return fmt.Errorf("%w for dmbench: %v", cliutil.ErrInvalidFlags, err)
			}
			selected = append(selected, e)
		}
	}
	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		if err := e.Run(os.Stdout, scale); err != nil {
			return fmt.Errorf("EXP-%s failed: %w", e.ID, err)
		}
	}
	return nil
}
