package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/mining"
)

// buildDmserve compiles the real binary into a temp dir; crash testing a
// process that can be SIGKILLed needs an actual process, not run() in a
// goroutine.
func buildDmserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dmserve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startProcess launches the built binary and scans its stdout for the
// listen banner, returning the base URL and the running command.
func startProcess(t *testing.T, bin string, args []string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = &bytes.Buffer{}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "listening on http://"); ok {
				addrc <- rest
			}
		}
	}()
	select {
	case addr := <-addrc:
		return "http://" + addr, cmd
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("dmserve never printed the listen banner; stderr:\n%s", cmd.Stderr)
		return "", nil
	}
}

// TestCrashRecoveryKill9 is the crash gate: run the real dmserve binary
// with -data and -fsync=always, ingest acknowledged ops one at a time,
// SIGKILL the process mid-stream with no shutdown, restart it over the
// same directory, and require (a) every acknowledged op survived and
// (b) the served canonical rule bytes equal a from-scratch mine over the
// recovered op prefix.
func TestCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary")
	}
	bin := buildDmserve(t)
	path, db := writeFixture(t, 100)
	dataDir := filepath.Join(t.TempDir(), "data")
	args := []string{
		"-addr", "127.0.0.1:0",
		"-data", dataDir,
		"-fsync", "always",
		"-snapshotevery", "8",
		"-minsup", "0.05",
		"-maintainevery", "0",
	}

	base, cmd := startProcess(t, bin, append([]string{"-in", path}, args...))
	acked := 0
	appended := make([][]int, 0, 40)
	for i := 0; i < 40; i++ {
		row := []int{i % 6, i%6 + 6, 12 + i%8}
		line := fmt.Sprintf("%d %d %d\n", row[0], row[1], row[2])
		resp, err := http.Post(base+"/v1/append", "text/plain", strings.NewReader(line))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d: status %d", i, resp.StatusCode)
		}
		// -fsync=always: a 200 means the op hit the disk before the ack.
		acked++
		appended = append(appended, row)
	}
	// Crash: SIGKILL, no drain, no final snapshot, no WAL close.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	base, cmd = startProcess(t, bin, args) // no -in: recovery only
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	var stats struct {
		RecoveredOps uint64 `json:"recovered_ops"`
		Durable      bool   `json:"durable"`
	}
	getJSON(t, base+"/v1/stats", &stats)
	if !stats.Durable {
		t.Fatal("restarted server not durable")
	}
	if stats.RecoveredOps < uint64(acked) {
		t.Fatalf("acknowledged-then-lost: recovered %d ops < acked %d", stats.RecoveredOps, acked)
	}
	if stats.RecoveredOps > uint64(len(appended)) {
		t.Fatalf("invented ops: recovered %d > sent %d", stats.RecoveredOps, len(appended))
	}

	rows := append(db.Rows(), appended[:stats.RecoveredOps]...)
	oracle, err := mining.NewDB(rows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mining.Mine(context.Background(), oracle, mining.MinSupport(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if got := fetchCanonical(t, base); !bytes.Equal(got, res.Canonical()) {
		t.Fatalf("post-crash canonical bytes diverge from a from-scratch mine over %d recovered ops",
			stats.RecoveredOps)
	}

	// Sanity: the recovered server keeps serving and ingesting.
	resp, err := http.Post(base+"/v1/flush", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	var flush struct {
		NumTx int `json:"num_tx"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&flush); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if flush.NumTx != len(rows) {
		t.Fatalf("recovered server serves %d transactions, want %d", flush.NumTx, len(rows))
	}
}
