package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/mining"
)

// wireRule mirrors internal/serve's rule wire form.
type wireRule struct {
	Antecedent []int   `json:"antecedent"`
	Consequent []int   `json:"consequent"`
	Support    int     `json:"support"`
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
}

// wireRules mirrors internal/serve's rule-endpoint response.
type wireRules struct {
	Version uint64     `json:"version"`
	NumTx   int        `json:"num_tx"`
	Rules   []wireRule `json:"rules"`
}

// writeFixture writes a correlated basket file and returns its path plus
// the parsed DB (the oracle input).
func writeFixture(t *testing.T, n int) (string, *mining.DB) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	var sb strings.Builder
	for i := 0; i < n; i++ {
		base := rng.Intn(6)
		fmt.Fprintf(&sb, "%d %d", base, base+6)
		for j := 0; j < rng.Intn(4); j++ {
			fmt.Fprintf(&sb, " %d", 12+rng.Intn(8))
		}
		sb.WriteByte('\n')
	}
	path := filepath.Join(t.TempDir(), "baskets.txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatalf("writing fixture: %v", err)
	}
	db, err := mining.ReadBasket(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return path, db
}

// startServer runs dmserve's run() on a loopback port and returns the
// base URL plus a shutdown func that asserts a clean exit.
func startServer(t *testing.T, args []string) (string, *bytes.Buffer, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	var out bytes.Buffer
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, args, &out, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("server exited before ready: %v\n%s", err, out.String())
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	stop := func() {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("run returned %v on shutdown\n%s", err, out.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server did not shut down")
		}
	}
	return "http://" + addr, &out, stop
}

// getJSON fetches a URL and decodes the JSON body.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: decoding %q: %v", url, body, err)
	}
}

// ruleKey gives rules an order-independent identity for set comparison.
func ruleKey(ante, cons []int, support int, conf float64) string {
	return fmt.Sprintf("%v=>%v sup=%d conf=%.9f", ante, cons, support, conf)
}

// TestEndToEnd is the dmserve e2e smoke: start the server over a
// fixture, query the full rule set over HTTP, and diff it against the
// same mining pipeline cmd/dmine's assoc mode uses (mining.Mine +
// Result.Rules at the same thresholds). Then drive the ingest path
// (append, delete, flush) and check the republished view.
func TestEndToEnd(t *testing.T) {
	path, db := writeFixture(t, 300)
	base, out, stop := startServer(t, []string{
		"-in", path,
		"-addr", "127.0.0.1:0",
		"-minsup", "0.05",
		"-minconf", "0.3",
		"-rulefloor", "0.3",
		"-maintainevery", "0",
	})
	defer stop()

	if !strings.Contains(out.String(), "300 transactions") {
		t.Fatalf("startup banner missing transaction count:\n%s", out.String())
	}

	// Query path: the served rule set must match dmine's pipeline.
	var got wireRules
	getJSON(t, base+"/v1/rules?k=10000&minconf=0.3", &got)
	if got.Version != 1 || got.NumTx != 300 {
		t.Fatalf("rules header version=%d num_tx=%d, want 1/300", got.Version, got.NumTx)
	}
	res, err := mining.Mine(context.Background(), db, mining.MinSupport(0.05))
	if err != nil {
		t.Fatalf("oracle mine: %v", err)
	}
	want, err := res.Rules(0.3)
	if err != nil {
		t.Fatalf("oracle rules: %v", err)
	}
	gotKeys := make([]string, len(got.Rules))
	for i, r := range got.Rules {
		gotKeys[i] = ruleKey(r.Antecedent, r.Consequent, r.Support, r.Confidence)
	}
	wantKeys := make([]string, len(want))
	for i, r := range want {
		wantKeys[i] = ruleKey(r.Antecedent, r.Consequent, r.Support, r.Confidence)
	}
	sort.Strings(gotKeys)
	sort.Strings(wantKeys)
	if len(gotKeys) == 0 {
		t.Fatal("served rule set is empty")
	}
	if !slices.Equal(gotKeys, wantKeys) {
		t.Fatalf("served rules diverge from dmine pipeline:\n got %d: %v\nwant %d: %v",
			len(gotKeys), gotKeys, len(wantKeys), wantKeys)
	}

	// Support lookup agrees with the oracle result.
	var sup struct {
		Count    int  `json:"count"`
		Frequent bool `json:"frequent"`
	}
	getJSON(t, base+"/v1/support?items=0,6", &sup)
	wantCount, wantFreq := res.Support(0, 6)
	if sup.Count != wantCount || sup.Frequent != wantFreq {
		t.Fatalf("support(0,6) = (%d, %v) over HTTP, oracle (%d, %v)",
			sup.Count, sup.Frequent, wantCount, wantFreq)
	}

	// Ingest path: append two rows, delete one, flush, re-check the view.
	resp, err := http.Post(base+"/v1/append", "text/plain", strings.NewReader("0 6\n1 7\n"))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/delete?tid=0", "text/plain", nil)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Post(base+"/v1/flush", "text/plain", nil)
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	var flush struct {
		Version uint64 `json:"version"`
		NumTx   int    `json:"num_tx"`
		Ops     uint64 `json:"ops"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&flush); err != nil {
		t.Fatalf("flush decode: %v", err)
	}
	resp.Body.Close()
	if flush.Version < 2 || flush.NumTx != 301 || flush.Ops != 3 {
		t.Fatalf("flush = %+v, want version>=2 num_tx=301 ops=3", flush)
	}
	getJSON(t, base+"/v1/rules?k=5", &got)
	if got.Version != flush.Version || got.NumTx != 301 {
		t.Fatalf("post-flush rules header %d/%d, want %d/301", got.Version, got.NumTx, flush.Version)
	}
}

// TestRPCTransportFlag starts dmserve with -rpcaddr and checks the
// banner advertises both listeners.
func TestRPCTransportFlag(t *testing.T) {
	path, _ := writeFixture(t, 60)
	_, out, stop := startServer(t, []string{
		"-in", path,
		"-addr", "127.0.0.1:0",
		"-rpcaddr", "127.0.0.1:0",
		"-maintainevery", "0",
	})
	stop()
	if !strings.Contains(out.String(), "rpc listening on") {
		t.Fatalf("rpc banner missing:\n%s", out.String())
	}
}

// TestBadFlags pins the invalid-flag exit class.
func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{"-distfaults", "err=0.1"}, // requires -dist
		{"-distfaults", "nonsense", "-dist"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		err := run(context.Background(), args, &out, nil)
		if code := cliutil.ExitCode(err); code != 2 {
			t.Errorf("run(%v) error %v maps to exit %d, want 2", args, err, code)
		}
	}
	if err := run(context.Background(), []string{"-in", "/nonexistent/baskets"}, io.Discard, nil); err == nil {
		t.Error("missing -in file did not error")
	}
}
