package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cliutil"
	"repro/mining"
)

// TestDurableRestart is the dmserve durability e2e: start with -data and
// -in, ingest over HTTP, flush, shut down cleanly, restart over the same
// directory with no -in, and check the recovered server serves the exact
// post-ingest state.
func TestDurableRestart(t *testing.T) {
	path, db := writeFixture(t, 120)
	dataDir := filepath.Join(t.TempDir(), "dm-data")
	args := []string{
		"-addr", "127.0.0.1:0",
		"-data", dataDir,
		"-fsync", "always",
		"-snapshotevery", "16",
		"-minsup", "0.05",
		"-rulefloor", "0.3",
		"-maintainevery", "0",
	}
	base, out, stop := startServer(t, append([]string{"-in", path}, args...))

	var st map[string]string
	getJSON(t, base+"/v1/readyz", &st)
	if st["status"] != "ready" {
		t.Fatalf("readyz: %v", st)
	}

	rows := db.Rows()
	for i := 0; i < 30; i++ {
		line := fmt.Sprintf("%d %d %d\n", i%6, i%6+6, 12+i%8)
		resp, err := http.Post(base+"/v1/append", "text/plain", strings.NewReader(line))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d: status %d", i, resp.StatusCode)
		}
		rows = append(rows, []int{i % 6, i%6 + 6, 12 + i%8})
	}
	resp, err := http.Post(base+"/v1/flush", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	wantCanon := fetchCanonical(t, base)
	stop()
	if !strings.Contains(out.String(), "durable: fresh data directory") {
		t.Fatalf("fresh-directory banner missing:\n%s", out.String())
	}

	// Restart with the same -in: the directory already holds state, so the
	// file must be ignored and every ingested op recovered.
	base, out, stop = startServer(t, append([]string{"-in", path}, args...))
	defer stop()
	if !strings.Contains(out.String(), "durable: recovered 30 ops") ||
		!strings.Contains(out.String(), "-in ignored") {
		t.Fatalf("recovery banner wrong:\n%s", out.String())
	}
	getJSON(t, base+"/v1/readyz", &st)
	if st["status"] != "ready" {
		t.Fatalf("readyz after restart: %v", st)
	}
	if got := fetchCanonical(t, base); !bytes.Equal(got, wantCanon) {
		t.Fatal("recovered canonical bytes differ from the pre-shutdown state")
	}

	// And both must equal a from-scratch mine over the folded op stream.
	oracle, err := mining.NewDB(rows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mining.Mine(context.Background(), oracle, mining.MinSupport(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantCanon, res.Canonical()) {
		t.Fatal("served canonical bytes diverge from a from-scratch mine")
	}
}

// fetchCanonical GETs /v1/canonical and returns the body bytes.
func fetchCanonical(t *testing.T, base string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/canonical")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("canonical: status %d, %v", resp.StatusCode, err)
	}
	return body
}

// TestDurableFlagValidation pins the -data prerequisite of the
// durability flags.
func TestDurableFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-fsync", "never"},          // requires -data
		{"-snapshotevery", "8"},      // requires -data
		{"-data", "", "-fsync", "x"}, // bad policy
		{"-data", "d", "-fsync", "interval=soon"},
	} {
		var out bytes.Buffer
		err := run(context.Background(), args, &out, nil)
		if code := cliutil.ExitCode(err); code != 2 {
			t.Errorf("run(%v) error %v maps to exit %d, want 2", args, err, code)
		}
	}
}
