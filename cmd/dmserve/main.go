// Command dmserve is the long-running rule-serving tier: it loads an
// optional initial basket file into a mining session, then serves
// HTTP/JSON (and optionally net/rpc) queries — top-k rules by support,
// confidence or lift, itemset support lookups, per-antecedent
// recommendations — while ingesting appends and deletes through a
// bounded queue. Readers always see a complete, versioned rule set:
// every Maintain publishes an immutable copy-on-write snapshot behind an
// atomic pointer swap (see internal/serve).
//
// Usage:
//
//	dmserve -in baskets.txt -addr 127.0.0.1:8080
//	        [-rpcaddr 127.0.0.1:8081]
//	        [-minsup 0.01 -rulefloor 0.5 -algo Auto -workers 0 -shardcap 1024]
//	        [-maintainafter 256 -maintainevery 2s -queue 1024 -cache 512]
//	        [-data dir -fsync always|interval[=100ms]|never -snapshotevery 4096]
//	        [-dist -distworkers 4 [-distfaults seed=1,err=0.1,timeout=250ms]]
//
// Endpoints:
//
//	GET  /v1/rules?k=10&by=confidence|support|lift&minconf=0.6&antecedent=1,2
//	GET  /v1/support?items=1,2
//	GET  /v1/recommend?items=1,2&k=5
//	GET  /v1/stats        GET /v1/canonical
//	GET  /v1/healthz      GET /v1/readyz
//	POST /v1/append       (body: basket lines)
//	POST /v1/delete?tid=N
//	POST /v1/flush        (drain queue, maintain, publish)
//
// With -data the server is durable: every ingested op is written to a
// checksummed write-ahead log under the directory before it is
// acknowledged (-fsync picks the sync policy; "always" makes
// acknowledged-then-lost impossible even across power loss), snapshots
// bound replay time, and a restart recovers the exact acknowledged
// state — if the directory already holds state, -in is ignored. The
// listen socket opens before recovery; /v1/healthz is green immediately
// while /v1/readyz answers 503 until replay finishes, so load balancers
// can gate traffic honestly during a long recovery. The HTTP server
// carries slow-client (slowloris) read timeouts, and every handler runs
// behind panic-recovery middleware.
//
// With -dist the session's support counting fans out to in-process
// distributed workers over the gob transport (the BindStore path: full
// re-mines re-ship only dirty shards); -distfaults arms the seeded fault
// injector plus the retry/failover layer on top, exactly as in dmine.
// The server prints "listening on http://ADDR" once ready and exits
// cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/serve"
	"repro/internal/wal"
	"repro/mining"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, os.Args[1:], os.Stdout, nil)
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "dmserve:", err)
	}
	os.Exit(cliutil.ExitCode(err))
}

// run parses flags, builds the server and serves until ctx is cancelled.
// When ready is non-nil it receives the bound HTTP address once the
// listener is up (the e2e test's readiness hook).
func run(ctx context.Context, args []string, stdout io.Writer, ready chan<- string) error {
	fs := cliutil.NewFlagSet("dmserve")
	var (
		in       = fs.String("in", "", "optional initial basket file (one transaction per line)")
		sup      = cliutil.AddSupportFlags(fs)
		algo     = fs.String("algo", "Auto", "mining engine (see mining.Algorithms)")
		workers  = cliutil.AddWorkersFlag(fs)
		shardCap = fs.Int("shardcap", 0, "transactions per store shard (0 = 1024)")
		sf       = cliutil.AddServeFlags(fs)
		dist     = cliutil.AddDistFlags(fs,
			"fan support counting out to the distributed backend (in-process gob transport)",
			"distributed: worker count for the in-process transport; 0 means GOMAXPROCS")
		faultSpec = cliutil.AddFaultsFlag(fs)
	)
	if err := cliutil.Parse(fs, args); err != nil {
		return err
	}
	faults, err := cliutil.ParseFaults(*faultSpec)
	if err != nil {
		return err
	}
	if faults != nil && !dist.Dist {
		return fmt.Errorf("%w for dmserve: -distfaults requires -dist", cliutil.ErrInvalidFlags)
	}
	fsync, err := cliutil.ParseFsync(sf.Fsync)
	if err != nil {
		return err
	}
	if sf.Data == "" && (fsync.Mode != "always" || fsync.Interval != 0 || sf.SnapshotEvery != 0) {
		return fmt.Errorf("%w for dmserve: -fsync and -snapshotevery require -data", cliutil.ErrInvalidFlags)
	}

	opts := []mining.Option{
		mining.Algorithm(*algo),
		mining.Workers(cliutil.ResolveWorkers(*workers)),
		mining.ShardCap(*shardCap),
	}
	if dist.Dist {
		switch *algo {
		case "Apriori", "FPGrowth", "Auto", "Distributed":
		default:
			return fmt.Errorf("-dist supports -algo Apriori or FPGrowth, not %q", *algo)
		}
		wn := dist.EffectiveWorkers()
		opts = append(opts, mining.Transport(mining.LocalTransport(wn)))
		fmt.Fprintf(stdout, "distributed: %s engine over %d in-process workers (gob transport)\n", *algo, wn)
		if faults != nil {
			opts = append(opts,
				mining.Retry(mining.RetrySpec{
					MaxAttempts: faults.Attempts,
					CallTimeout: faults.Timeout,
					Backoff:     faults.Backoff,
					MaxBackoff:  faults.MaxBackoff,
					Seed:        faults.Seed,
				}),
				mining.Faults(mining.FaultSpec{
					Seed:           faults.Seed,
					Drop:           faults.Drop,
					Error:          faults.Err,
					Kill:           faults.Kill,
					Delay:          faults.Delay,
					DelayProb:      faults.DelayProb,
					PartitionAfter: faults.Partition,
				}))
			fmt.Fprintf(stdout, "fault injection: seed=%d drop=%.3g err=%.3g kill=%.3g timeout=%s attempts=%d\n",
				faults.Seed, faults.Drop, faults.Err, faults.Kill, faults.Timeout, faults.Attempts)
		}
	}

	var db *mining.DB
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		db, err = mining.ReadBasket(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	// Listen before recovery: a long WAL replay should not look like a
	// dead process. The bootstrap handler answers liveness green and
	// everything else 503 until the real server swaps in.
	ln, err := net.Listen("tcp", sf.Addr)
	if err != nil {
		return err
	}
	var handler atomic.Pointer[http.Handler]
	starting := serve.StartingHandler()
	handler.Store(&starting)
	httpSrv := serve.NewHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*handler.Load()).ServeHTTP(w, r)
	}), serve.HTTPTimeouts{})
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	cfg := serve.Config{
		MinSupport:    sup.MinSup,
		RuleFloor:     sf.RuleFloor,
		QueueSize:     sf.Queue,
		MaintainAfter: sf.MaintainAfter,
		MaintainEvery: sf.MaintainEvery,
		CacheSize:     sf.Cache,
		Options:       opts,
	}
	if sf.Data != "" {
		cfg.DataDir = sf.Data
		cfg.SnapshotEvery = sf.SnapshotEvery
		switch fsync.Mode {
		case "always":
			cfg.Fsync = wal.SyncAlways
		case "never":
			cfg.Fsync = wal.SyncNever
		case "interval":
			cfg.Fsync = wal.SyncInterval
			cfg.FsyncEvery = fsync.Interval
		}
	}
	srv, err := serve.New(db, cfg)
	if err != nil {
		httpSrv.Close()
		return err
	}
	defer srv.Close()
	live := srv.Handler()
	handler.Store(&live)

	v := srv.View()
	fmt.Fprintf(stdout, "dmserve: %d transactions, version %d, %d rules at floor\n",
		v.NumTx(), v.Version(), len(v.Rules()))
	if sf.Data != "" {
		if ops, found := srv.Recovered(); found {
			fmt.Fprintf(stdout, "durable: recovered %d ops from %s (fsync=%s)\n", ops, sf.Data, sf.Fsync)
			if *in != "" {
				fmt.Fprintf(stdout, "durable: -in ignored, %s already holds state\n", sf.Data)
			}
		} else {
			fmt.Fprintf(stdout, "durable: fresh data directory %s (fsync=%s)\n", sf.Data, sf.Fsync)
		}
	}
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())

	if sf.RPCAddr != "" {
		rln, err := net.Listen("tcp", sf.RPCAddr)
		if err != nil {
			httpSrv.Close()
			return err
		}
		defer rln.Close()
		go srv.ServeRPC(rln)
		fmt.Fprintf(stdout, "rpc listening on %s (service %s)\n", rln.Addr(), serve.RPCService)
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	<-errc // http.ErrServerClosed from Serve
	fmt.Fprintln(stdout, "dmserve: shut down")
	return nil
}
