package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/transactions"
)

func generate(t *testing.T, kind string, n int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(&buf, kind, n, 8, 3, 2, 0.05, 3, 2, 9); err != nil {
		t.Fatalf("run(%s): %v", kind, err)
	}
	return buf.String()
}

func TestGenerateBasketsParsesBack(t *testing.T) {
	out := generate(t, "baskets", 50)
	db, err := transactions.ReadBasket(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 50 {
		t.Errorf("transactions = %d", db.Len())
	}
}

func TestGenerateClassifyParsesBack(t *testing.T) {
	out := generate(t, "classify", 40)
	tbl, err := dataset.ReadCSV(strings.NewReader(out), "group")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 40 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
	if tbl.NumClasses() == 0 {
		t.Error("class column not categorical")
	}
}

func TestGenerateClustersHasHeaderAndLabels(t *testing.T) {
	out := generate(t, "clusters", 30)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 31 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "x0,x1,label" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestGenerateSequencesFormat(t *testing.T) {
	out := generate(t, "sequences", 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 20 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, line := range lines {
		if strings.TrimSpace(line) == "" {
			t.Fatal("empty customer line")
		}
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", 10, 1, 1, 1, 0, 1, 1, 1); err == nil {
		t.Error("unknown kind should error")
	}
}
