// Command dmgen generates the synthetic benchmark workloads used by the
// reproduction: Quest-style market baskets, customer sequences,
// classification benchmark tables, and Gaussian cluster points.
//
// Usage:
//
//	dmgen -kind baskets  -n 10000 -t 10 -i 4 -seed 1 > baskets.txt
//	dmgen -kind classify -n 2000  -fn 5 -noise 0.1  > people.csv
//	dmgen -kind clusters -n 1000  -k 5              > points.csv
//	dmgen -kind sequences -n 1000                   > sequences.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/synth"
)

func main() {
	var (
		kind  = flag.String("kind", "baskets", "baskets | sequences | classify | clusters")
		n     = flag.Int("n", 1000, "rows / transactions / customers / points")
		t     = flag.Float64("t", 10, "baskets: average transaction size")
		i     = flag.Float64("i", 4, "baskets: average pattern size")
		fn    = flag.Int("fn", 1, "classify: benchmark function 1..10")
		noise = flag.Float64("noise", 0, "classify: label-noise probability")
		k     = flag.Int("k", 5, "clusters: number of clusters")
		dims  = flag.Int("dims", 2, "clusters: dimensionality")
		seed  = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	if err := run(os.Stdout, *kind, *n, *t, *i, *fn, *noise, *k, *dims, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dmgen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, kind string, n int, t, i float64, fn int, noise float64, k, dims int, seed int64) error {
	out := bufio.NewWriter(w)
	defer out.Flush()
	switch kind {
	case "baskets":
		db, err := synth.Baskets(synth.TxI(t, i, n, seed))
		if err != nil {
			return err
		}
		return db.WriteBasket(out)
	case "sequences":
		seqs, err := synth.Sequences(synth.C10T2S4I1(n, seed))
		if err != nil {
			return err
		}
		// One customer per line; transactions separated by ';'.
		for _, s := range seqs {
			for ti, tx := range s {
				if ti > 0 {
					fmt.Fprint(out, " ; ")
				}
				for ii, item := range tx {
					if ii > 0 {
						fmt.Fprint(out, " ")
					}
					fmt.Fprint(out, item)
				}
			}
			fmt.Fprintln(out)
		}
		return nil
	case "classify":
		tbl, err := synth.Classify(synth.ClassifyConfig{NumRows: n, Function: fn, Noise: noise, Seed: seed})
		if err != nil {
			return err
		}
		return tbl.WriteCSV(out)
	case "clusters":
		p, err := synth.GaussianMixture(synth.GaussianConfig{
			NumPoints: n, NumCluster: k, Dims: dims, Spread: 1, Separation: 50, Seed: seed,
		})
		if err != nil {
			return err
		}
		for d := 0; d < dims; d++ {
			if d > 0 {
				fmt.Fprint(out, ",")
			}
			fmt.Fprintf(out, "x%d", d)
		}
		fmt.Fprintln(out, ",label")
		for idx, x := range p.X {
			for d, v := range x {
				if d > 0 {
					fmt.Fprint(out, ",")
				}
				fmt.Fprintf(out, "%g", v)
			}
			fmt.Fprintf(out, ",%d\n", p.Labels[idx])
		}
		return nil
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
}
