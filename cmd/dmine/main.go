// Command dmine runs the library's mining algorithms on user data.
//
// Subcommands:
//
//	dmine assoc    -in baskets.txt -minsup 0.01 -minconf 0.5 [-algo Apriori]
//	               [-incremental -updates updates.txt -shardcap 1024 -verify]
//	               [-dist -distworkers 4 [-distfaults seed=1,err=0.1,kill=0.02]]
//	dmine seq      -in sequences.txt -minsup 0.02 [-algo GSP]
//	dmine cluster  -in points.csv -k 5 [-algo kmeans]
//	dmine classify -in people.csv -class group [-algo tree] [-folds 10]
//
// Input formats match cmd/dmgen's output: whitespace-separated item ids
// (one basket per line), ';'-separated transactions of item ids (one
// customer per line), and CSV with a header row.
//
// The assoc subcommand is a thin shell over the public mining package:
// flags map one-to-one onto mining options (-algo -> mining.Algorithm,
// -workers -> mining.Workers, -dist -> mining.Transport, -incremental ->
// mining.Session), so anything the CLI does a Go program can do through
// the same API. Invalid flags exit 2 with consistent error text across
// dmine and dmbench (internal/cliutil).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/quant"
	"repro/internal/seqmine"
	"repro/internal/transactions"
	"repro/mining"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "assoc":
		err = runAssoc(os.Args[2:])
	case "seq":
		err = runSeq(os.Args[2:])
	case "cluster":
		err = runCluster(os.Args[2:])
	case "classify":
		err = runClassify(os.Args[2:])
	case "quant":
		err = runQuant(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "dmine:", err)
	}
	os.Exit(cliutil.ExitCode(err))
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dmine <assoc|seq|cluster|classify|quant> [flags]")
}

// runQuant mines quantitative association rules from a CSV table.
func runQuant(args []string) error {
	fs := cliutil.NewFlagSet("quant")
	in := fs.String("in", "", "CSV with a header row")
	bins := fs.Int("bins", 4, "equi-depth intervals per numeric attribute")
	maxSup := fs.Float64("maxsup", 0.5, "maximum interval support")
	minsup := fs.Float64("minsup", 0.1, "minimum rule support")
	minconf := fs.Float64("minconf", 0.6, "minimum rule confidence")
	topN := fs.Int("top", 20, "rules to print")
	if err := cliutil.Parse(fs, args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	tbl, err := dataset.ReadCSV(f, "")
	if err != nil {
		return err
	}
	rules, codec, err := quant.Mine(tbl, quant.Config{Bins: *bins, MaxSupport: *maxSup}, *minsup, *minconf)
	if err != nil {
		return err
	}
	fmt.Printf("%d rows, %d encoded items, %d rules\n", tbl.NumRows(), len(codec.Items), len(rules))
	for i, r := range rules {
		if i >= *topN {
			break
		}
		fmt.Println(" ", r)
	}
	return nil
}

func runAssoc(args []string) error {
	fs := cliutil.NewFlagSet("assoc")
	in := fs.String("in", "", "basket file (one transaction per line)")
	sup := cliutil.AddSupportFlags(fs)
	algo := fs.String("algo", "Apriori", "mining engine (see mining.Algorithms)")
	topN := fs.Int("top", 20, "rules to print")
	workers := cliutil.AddWorkersFlag(fs)
	inc := cliutil.AddIncrementalFlags(fs)
	dist := cliutil.AddDistFlags(fs,
		"mine through the distributed coordinator/worker backend (in-process transport; -algo selects Apriori or FPGrowth as the engine)",
		"distributed: worker count for the in-process transport; 0 means GOMAXPROCS")
	faultSpec := cliutil.AddFaultsFlag(fs)
	if err := cliutil.Parse(fs, args); err != nil {
		return err
	}
	faults, err := cliutil.ParseFaults(*faultSpec)
	if err != nil {
		return err
	}
	if faults != nil && !dist.Dist {
		return fmt.Errorf("%w for assoc: -distfaults requires -dist", cliutil.ErrInvalidFlags)
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := mining.ReadBasket(f)
	if err != nil {
		return err
	}
	opts := []mining.Option{
		mining.MinSupport(sup.MinSup),
		mining.Algorithm(*algo),
		mining.Workers(cliutil.ResolveWorkers(*workers)),
	}
	if dist.Dist {
		// Validate the engine before announcing anything: the banner must
		// never name a combination mining.Mine is about to reject.
		switch *algo {
		case "Apriori", "FPGrowth", "Auto", "Distributed":
		default:
			return fmt.Errorf("-dist supports -algo Apriori or FPGrowth, not %q", *algo)
		}
		wn := dist.EffectiveWorkers()
		opts = append(opts, mining.Transport(mining.LocalTransport(wn)))
		fmt.Printf("distributed: %s engine over %d in-process workers (gob transport)\n", *algo, wn)
		if faults != nil {
			opts = append(opts,
				mining.Retry(mining.RetrySpec{
					MaxAttempts: faults.Attempts,
					CallTimeout: faults.Timeout,
					Backoff:     faults.Backoff,
					MaxBackoff:  faults.MaxBackoff,
					Seed:        faults.Seed,
				}),
				mining.Faults(mining.FaultSpec{
					Seed:           faults.Seed,
					Drop:           faults.Drop,
					Error:          faults.Err,
					Kill:           faults.Kill,
					Delay:          faults.Delay,
					DelayProb:      faults.DelayProb,
					PartitionAfter: faults.Partition,
				}))
			// Echo the resolved schedule so a run is reproducible from its
			// own output.
			fmt.Printf("fault injection: seed=%d drop=%.3g err=%.3g kill=%.3g delay=%s delayprob=%.3g partition=%d timeout=%s attempts=%d backoff=%s\n",
				faults.Seed, faults.Drop, faults.Err, faults.Kill, faults.Delay,
				faults.DelayProb, faults.Partition, faults.Timeout, faults.Attempts, faults.Backoff)
		}
	}
	ctx := context.Background()
	var res *mining.Result
	if inc.Enabled {
		res, err = runAssocIncremental(ctx, db, opts, inc)
	} else {
		res, err = mining.Mine(ctx, db, opts...)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d transactions, %d frequent itemsets (max length %d)\n",
		*algo, res.NumTx(), res.NumFrequent(), res.MaxLen())
	for _, p := range res.Passes() {
		note := ""
		if p.Degraded {
			note = " (degraded: served by local fallback)"
		}
		fmt.Printf("  pass %d: %d candidates, %d frequent%s\n", p.K, p.Candidates, p.Frequent, note)
	}
	rules, err := res.Rules(sup.MinConf)
	if err != nil {
		return err
	}
	fmt.Printf("%d rules at confidence >= %.2f\n", len(rules), sup.MinConf)
	for i, r := range rules {
		if i >= *topN {
			break
		}
		fmt.Println(" ", r)
	}
	return nil
}

// runAssocIncremental mines db through a mining.Session: the transactions
// are bulk-loaded into the session's sharded store, an initial full mine
// builds the per-shard count caches, and the optional update script is
// replayed with a Maintain step at every '=' line (and a final one),
// re-counting only dirty shards unless the negative border is crossed.
// With -verify, every maintained result is checked byte-identical to a
// one-shot Mine over a store snapshot with the same options.
func runAssocIncremental(ctx context.Context, db *mining.DB, opts []mining.Option, inc *cliutil.IncrementalFlags) (*mining.Result, error) {
	s, err := mining.NewSession(db, append(opts, mining.ShardCap(inc.ShardCap))...)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	res, stats, err := s.Maintain(ctx)
	if err != nil {
		return nil, err
	}
	fmt.Printf("incremental: attached %d transactions in %d shards\n", s.Len(), stats.NumShards)

	verifyNow := func(label string) error {
		if !inc.Verify {
			return nil
		}
		want, err := mining.Mine(ctx, s.Snapshot(), opts...)
		if err != nil {
			return err
		}
		if string(res.Canonical()) != string(want.Canonical()) {
			return fmt.Errorf("%s: maintained result differs from a from-scratch run", label)
		}
		fmt.Printf("  %s: verified byte-identical to a from-scratch run\n", label)
		return nil
	}
	if err := verifyNow("attach"); err != nil {
		return nil, err
	}

	step := 0
	maintain := func() error {
		step++
		res, stats, err = s.Maintain(ctx)
		if err != nil {
			return err
		}
		if stats.FullRun {
			fmt.Printf("  step %d: %d transactions, %d frequent; full re-mine (%s)\n",
				step, s.Len(), res.NumFrequent(), stats.Reason)
		} else {
			fmt.Printf("  step %d: %d transactions, %d frequent; re-counted %d/%d shards (%d transactions)\n",
				step, s.Len(), res.NumFrequent(), stats.DirtyShards, stats.NumShards, stats.RecountedTx)
		}
		return verifyNow(fmt.Sprintf("step %d", step))
	}

	if inc.Updates == "" {
		return res, nil
	}
	uf, err := os.Open(inc.Updates)
	if err != nil {
		return nil, err
	}
	defer uf.Close()
	sc := bufio.NewScanner(uf)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo, pending := 0, false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "+":
			items := make([]int, 0, len(fields)-1)
			for _, fstr := range fields[1:] {
				v, err := strconv.Atoi(fstr)
				if err != nil {
					return nil, fmt.Errorf("updates line %d: %w", lineNo, err)
				}
				items = append(items, v)
			}
			if err := s.Append(items...); err != nil {
				return nil, fmt.Errorf("updates line %d: %w", lineNo, err)
			}
			pending = true
		case "-":
			if len(fields) != 2 {
				return nil, fmt.Errorf("updates line %d: want '- tid'", lineNo)
			}
			tid, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("updates line %d: %w", lineNo, err)
			}
			if _, err := s.DeleteAt(tid); err != nil {
				return nil, fmt.Errorf("updates line %d: %w", lineNo, err)
			}
			pending = true
		case "=":
			if err := maintain(); err != nil {
				return nil, err
			}
			pending = false
		default:
			return nil, fmt.Errorf("updates line %d: unknown op %q (want +, - or =)", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pending {
		if err := maintain(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func runSeq(args []string) error {
	fs := cliutil.NewFlagSet("seq")
	in := fs.String("in", "", "sequence file (transactions separated by ';')")
	minsup := fs.Float64("minsup", 0.02, "minimum relative support")
	algo := fs.String("algo", "GSP", "AprioriAll or GSP")
	topN := fs.Int("top", 20, "maximal sequences to print")
	if err := cliutil.Parse(fs, args); err != nil {
		return err
	}
	data, err := readSequences(*in)
	if err != nil {
		return err
	}
	var miner seqmine.Miner
	switch *algo {
	case "GSP":
		miner = &seqmine.GSP{}
	case "AprioriAll":
		miner = &seqmine.AprioriAll{}
	default:
		return fmt.Errorf("unknown sequence miner %q", *algo)
	}
	res, err := miner.Mine(data, *minsup)
	if err != nil {
		return err
	}
	maximal := res.Maximal()
	sort.Slice(maximal, func(i, j int) bool { return maximal[i].Count > maximal[j].Count })
	fmt.Printf("%s: %d customers, %d frequent sequences, %d maximal\n",
		miner.Name(), len(data), res.NumFrequent(), len(maximal))
	for i, sc := range maximal {
		if i >= *topN {
			break
		}
		fmt.Printf("  %s (support %d)\n", sc.Seq, sc.Count)
	}
	return nil
}

func readSequences(path string) ([]seqmine.Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []seqmine.Sequence
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var seq seqmine.Sequence
		for _, part := range strings.Split(line, ";") {
			fields := strings.Fields(part)
			if len(fields) == 0 {
				continue
			}
			items := make([]int, 0, len(fields))
			for _, fstr := range fields {
				v, err := strconv.Atoi(fstr)
				if err != nil {
					return nil, fmt.Errorf("parsing %q: %w", fstr, err)
				}
				items = append(items, v)
			}
			seq = append(seq, transactions.NewItemset(items...))
		}
		if len(seq) > 0 {
			out = append(out, seq)
		}
	}
	return out, sc.Err()
}

func runCluster(args []string) error {
	fs := cliutil.NewFlagSet("cluster")
	in := fs.String("in", "", "CSV of numeric columns (non-numeric columns ignored)")
	k := fs.Int("k", 5, "number of clusters (ignored by dbscan)")
	algo := fs.String("algo", "kmeans", "kmeans | pam | clara | clarans | dbscan | birch")
	eps := fs.Float64("eps", 1, "dbscan: neighbourhood radius")
	minPts := fs.Int("minpts", 5, "dbscan: core-point threshold")
	seed := fs.Int64("seed", 1, "seed for randomised algorithms")
	if err := cliutil.Parse(fs, args); err != nil {
		return err
	}
	pts, err := readPoints(*in)
	if err != nil {
		return err
	}
	var c core.Clusterer
	switch *algo {
	case "kmeans":
		c = &core.KMeansClusterer{KMeans: cluster.KMeans{K: *k, Seed: *seed}}
	case "pam":
		c = &core.PAMClusterer{PAM: cluster.PAM{K: *k}}
	case "clara":
		c = &core.CLARAClusterer{CLARA: cluster.CLARA{K: *k, Seed: *seed}}
	case "clarans":
		c = &core.CLARANSClusterer{CLARANS: cluster.CLARANS{K: *k, Seed: *seed}}
	case "dbscan":
		c = &core.DBSCANClusterer{DBSCAN: cluster.DBSCAN{Eps: *eps, MinPts: *minPts, UseIndex: true}}
	case "birch":
		c = &core.BIRCHClusterer{BIRCH: cluster.BIRCH{K: *k, Seed: *seed}}
	default:
		return fmt.Errorf("unknown clusterer %q", *algo)
	}
	res, err := c.Cluster(pts)
	if err != nil {
		return err
	}
	sizes := map[int]int{}
	noise := 0
	for _, a := range res.Assignments {
		if a == cluster.Noise {
			noise++
		} else {
			sizes[a]++
		}
	}
	fmt.Printf("%s: %d points, %d clusters, %d noise, cost %.2f\n",
		c.Name(), len(pts), res.NumClusters(), noise, res.Cost)
	ids := make([]int, 0, len(sizes))
	for id := range sizes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  cluster %d: %d points\n", id, sizes[id])
	}
	return nil
}

func readPoints(path string) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tbl, err := dataset.ReadCSV(f, "")
	if err != nil {
		return nil, err
	}
	var numeric []int
	for j, a := range tbl.Attributes {
		if a.Kind == dataset.Numeric {
			numeric = append(numeric, j)
		}
	}
	if len(numeric) == 0 {
		return nil, fmt.Errorf("no numeric columns in %s", path)
	}
	pts := make([][]float64, tbl.NumRows())
	for i, row := range tbl.Rows {
		p := make([]float64, len(numeric))
		for d, j := range numeric {
			if dataset.IsMissing(row[j]) {
				return nil, fmt.Errorf("row %d: missing value in numeric column %q", i, tbl.Attributes[j].Name)
			}
			p[d] = row[j]
		}
		pts[i] = p
	}
	return pts, nil
}

func runClassify(args []string) error {
	fs := cliutil.NewFlagSet("classify")
	in := fs.String("in", "", "CSV with a header row")
	class := fs.String("class", "class", "class column name")
	algo := fs.String("algo", "", "classifier name (default: compare all)")
	folds := fs.Int("folds", 10, "cross-validation folds")
	seed := fs.Int64("seed", 1, "fold-assignment seed")
	if err := cliutil.Parse(fs, args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	tbl, err := dataset.ReadCSV(f, *class)
	if err != nil {
		return err
	}
	trainers := core.Classifiers()
	if *algo != "" {
		tr, err := core.ClassifierByName(*algo)
		if err != nil {
			return err
		}
		trainers = []core.ClassifierTrainer{tr}
	}
	if *algo != "" && len(trainers) == 1 {
		// Single classifier: print the full confusion matrix too.
		tr := trainers[0]
		res, err := eval.CrossValidate(tbl, *folds, *seed, func(train *dataset.Table) (eval.Classifier, error) {
			return tr.Train(train)
		})
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d rows, %d-fold CV accuracy %.2f%%, macro-F1 %.3f\n",
			tr.Name(), tbl.NumRows(), *folds, res.Accuracy()*100, res.Matrix.MacroF1())
		fmt.Print(res.Matrix)
		return nil
	}
	comps, err := core.CompareClassifiers(tbl, trainers, *folds, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("%d rows, %d-fold cross-validation\n", tbl.NumRows(), *folds)
	fmt.Printf("%-16s%12s%12s\n", "classifier", "accuracy", "macro-F1")
	for _, c := range comps {
		fmt.Printf("%-16s%11.2f%%%12.3f\n", c.Name, c.Accuracy*100, c.MacroF1)
	}
	return nil
}
