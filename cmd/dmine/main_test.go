package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cliutil"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadSequences(t *testing.T) {
	path := writeFile(t, "seq.txt", "1 2 ; 3\n4 ; 5 6 ; 7\n\n")
	data, err := readSequences(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 2 {
		t.Fatalf("customers = %d", len(data))
	}
	if len(data[0]) != 2 || len(data[1]) != 3 {
		t.Errorf("transaction counts = %d, %d", len(data[0]), len(data[1]))
	}
	if !data[0][0].Contains(1) || !data[0][0].Contains(2) {
		t.Errorf("first transaction = %v", data[0][0])
	}
}

func TestReadSequencesBadInput(t *testing.T) {
	path := writeFile(t, "bad.txt", "1 x ; 3\n")
	if _, err := readSequences(path); err == nil {
		t.Error("non-integer item should error")
	}
	if _, err := readSequences(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("missing file should error")
	}
}

func TestReadPoints(t *testing.T) {
	path := writeFile(t, "pts.csv", "x,y,name\n1,2,a\n3,4,b\n")
	pts, err := readPoints(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || len(pts[0]) != 2 {
		t.Fatalf("points = %v", pts)
	}
	if pts[1][0] != 3 || pts[1][1] != 4 {
		t.Errorf("pts[1] = %v", pts[1])
	}
}

func TestReadPointsErrors(t *testing.T) {
	allText := writeFile(t, "text.csv", "a,b\nx,y\n")
	if _, err := readPoints(allText); err == nil {
		t.Error("no numeric columns should error")
	}
	withMissing := writeFile(t, "missing.csv", "x\n1\n?\n")
	if _, err := readPoints(withMissing); err == nil {
		t.Error("missing numeric cell should error")
	}
}

func TestRunAssocEndToEnd(t *testing.T) {
	path := writeFile(t, "baskets.txt", "1 2 3\n1 2\n2 3\n1 2 3\n2\n1 2\n")
	if err := runAssoc([]string{"-in", path, "-minsup", "0.3", "-minconf", "0.5"}); err != nil {
		t.Fatalf("runAssoc: %v", err)
	}
	if err := runAssoc([]string{"-in", path, "-algo", "nope"}); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestRunAssocIncrementalEndToEnd(t *testing.T) {
	var baskets string
	for i := 0; i < 40; i++ {
		baskets += "1 2 3\n1 2\n2 3\n"
	}
	path := writeFile(t, "baskets.txt", baskets)
	// No updates: behaves like a plain mine through the sharded backend.
	if err := runAssoc([]string{"-in", path, "-minsup", "0.3", "-incremental", "-verify"}); err != nil {
		t.Fatalf("incremental without updates: %v", err)
	}
	// Appends, deletes and explicit maintain checkpoints, verified against
	// from-scratch runs at every step.
	updates := writeFile(t, "updates.txt",
		"# append then re-maintain\n+ 1 2 3\n+ 1 3\n=\n- 0\n- 5\n=\n+ 2 3\n")
	if err := runAssoc([]string{
		"-in", path, "-minsup", "0.3", "-incremental",
		"-updates", updates, "-shardcap", "64", "-verify",
	}); err != nil {
		t.Fatalf("incremental with updates: %v", err)
	}
	// Bad update scripts fail loudly.
	for _, bad := range []string{"? 1\n", "- notanint\n", "- 1 2\n", "+ x\n"} {
		badPath := writeFile(t, "bad.txt", bad)
		if err := runAssoc([]string{"-in", path, "-minsup", "0.3", "-incremental", "-updates", badPath}); err == nil {
			t.Errorf("update script %q should error", bad)
		}
	}
	// Deleting a tid out of range fails.
	oob := writeFile(t, "oob.txt", "- 100000\n")
	if err := runAssoc([]string{"-in", path, "-minsup", "0.3", "-incremental", "-updates", oob}); err == nil {
		t.Error("out-of-range delete should error")
	}
}

func TestRunSeqEndToEnd(t *testing.T) {
	path := writeFile(t, "seq.txt", "1 ; 2\n1 ; 2 ; 3\n1 ; 2\n")
	if err := runSeq([]string{"-in", path, "-minsup", "0.5"}); err != nil {
		t.Fatalf("runSeq: %v", err)
	}
	if err := runSeq([]string{"-in", path, "-algo", "AprioriAll"}); err != nil {
		t.Fatalf("runSeq AprioriAll: %v", err)
	}
	if err := runSeq([]string{"-in", path, "-algo", "bogus"}); err == nil {
		t.Error("unknown sequence miner should error")
	}
}

func TestRunClusterEndToEnd(t *testing.T) {
	csv := "x,y\n"
	for i := 0; i < 20; i++ {
		csv += "1,1\n100,100\n"
	}
	path := writeFile(t, "pts.csv", csv)
	for _, algo := range []string{"kmeans", "pam", "clara", "clarans", "birch"} {
		if err := runCluster([]string{"-in", path, "-k", "2", "-algo", algo}); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	if err := runCluster([]string{"-in", path, "-algo", "dbscan", "-eps", "5", "-minpts", "3"}); err != nil {
		t.Fatalf("dbscan: %v", err)
	}
	if err := runCluster([]string{"-in", path, "-algo", "bogus"}); err == nil {
		t.Error("unknown clusterer should error")
	}
}

func TestRunClassifyEndToEnd(t *testing.T) {
	csv := "age,class\n"
	for i := 0; i < 30; i++ {
		csv += "20,young\n70,old\n"
	}
	path := writeFile(t, "people.csv", csv)
	if err := runClassify([]string{"-in", path, "-class", "class", "-folds", "3"}); err != nil {
		t.Fatalf("compare-all: %v", err)
	}
	if err := runClassify([]string{"-in", path, "-class", "class", "-algo", "naivebayes", "-folds", "3"}); err != nil {
		t.Fatalf("single: %v", err)
	}
	if err := runClassify([]string{"-in", path, "-class", "nosuch"}); err == nil {
		t.Error("bad class column should error")
	}
}

func TestRunQuantEndToEnd(t *testing.T) {
	csv := "age,product\n"
	for i := 0; i < 30; i++ {
		csv += "25,A\n65,B\n"
	}
	path := writeFile(t, "people.csv", csv)
	if err := runQuant([]string{"-in", path, "-minsup", "0.2", "-minconf", "0.8"}); err != nil {
		t.Fatalf("runQuant: %v", err)
	}
	if err := runQuant([]string{"-in", filepath.Join(t.TempDir(), "nope.csv")}); err == nil {
		t.Error("missing file should error")
	}
}

func TestInvalidFlagsExitNonzero(t *testing.T) {
	// Every subcommand reports bad flags with the shared cliutil error
	// (consistent text, exit code 2 from main) instead of each FlagSet
	// improvising its own behavior.
	runs := map[string]func([]string) error{
		"assoc":    runAssoc,
		"seq":      runSeq,
		"cluster":  runCluster,
		"classify": runClassify,
		"quant":    runQuant,
	}
	for name, run := range runs {
		err := run([]string{"-definitely-not-a-flag"})
		if !errors.Is(err, cliutil.ErrInvalidFlags) {
			t.Errorf("%s: err = %v, want ErrInvalidFlags", name, err)
		}
		if cliutil.ExitCode(err) != 2 {
			t.Errorf("%s: exit code = %d, want 2", name, cliutil.ExitCode(err))
		}
	}
	if err := runAssoc([]string{"-workers", "NaN"}); !errors.Is(err, cliutil.ErrInvalidFlags) {
		t.Errorf("bad -workers value: err = %v, want ErrInvalidFlags", err)
	}
}

func TestRunAssocDistributed(t *testing.T) {
	path := writeFile(t, "baskets.txt", "1 2 3\n1 2\n2 3\n1 2 3\n2\n1 2\n")
	if err := runAssoc([]string{"-in", path, "-minsup", "0.3", "-dist", "-distworkers", "2"}); err != nil {
		t.Fatalf("distributed: %v", err)
	}
	if err := runAssoc([]string{"-in", path, "-minsup", "0.3", "-algo", "FPGrowth", "-dist", "-distworkers", "2"}); err != nil {
		t.Fatalf("distributed fpgrowth: %v", err)
	}
	if err := runAssoc([]string{"-in", path, "-minsup", "0.3", "-algo", "Eclat", "-dist"}); err == nil {
		t.Error("-dist with a non-distributable engine should error")
	}
}
